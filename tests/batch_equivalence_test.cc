// The batch ingestion contract (core/streaming_algorithm.h): for every
// algorithm, ProcessEdgeBatch must leave the algorithm in a state
// bit-identical to the per-edge path — same cover, same certificate,
// same EncodeState words, same meter peak — at any batch partition of
// the stream, and under the supervisor's batched delivery with faults
// firing.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstddef>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/registry.h"
#include "core/streaming_algorithm.h"
#include "instance/generators.h"
#include "run/run_supervisor.h"
#include "stream/edge_source.h"
#include "stream/fault_injector.h"
#include "stream/orderings.h"
#include "util/rng.h"

namespace setcover {
namespace {

// Large enough that the stream crosses several kIngestBatchEdges
// boundaries (exercises the NGuess composite-meter refresh points).
const EdgeStream& TestStream() {
  static const EdgeStream stream = [] {
    PlantedCoverParams params;
    params.num_elements = 256;
    params.num_sets = 4096;
    params.planted_cover_size = 8;
    params.decoy_min_size = 1;
    params.decoy_max_size = 4;
    Rng rng(7);
    SetCoverInstance instance = GeneratePlantedCover(params, rng);
    Rng order_rng(11);
    return OrderedStream(instance, StreamOrder::kRandom, order_rng);
  }();
  return stream;
}

struct Observed {
  CoverSolution solution;
  std::vector<uint64_t> state;  // EncodeState at end of stream
  size_t peak_words = 0;
};

void Capture(StreamingSetCoverAlgorithm& algorithm, Observed* out) {
  StateEncoder encoder;
  algorithm.EncodeState(&encoder);
  out->state = encoder.Words();
  out->solution = algorithm.Finalize();
  out->peak_words = algorithm.Meter().PeakWords();
}

Observed RunPerEdge(const std::string& name, const EdgeStream& stream) {
  auto algorithm = MakeAlgorithmByName(name, {});
  algorithm->Begin(stream.meta);
  for (const Edge& e : stream.edges) algorithm->ProcessEdge(e);
  Observed observed;
  Capture(*algorithm, &observed);
  return observed;
}

Observed RunBatched(const std::string& name, const EdgeStream& stream,
                    size_t batch_edges) {
  auto algorithm = MakeAlgorithmByName(name, {});
  algorithm->Begin(stream.meta);
  std::span<const Edge> edges(stream.edges);
  for (size_t offset = 0; offset < edges.size(); offset += batch_edges) {
    algorithm->ProcessEdgeBatch(
        edges.subspan(offset, std::min(batch_edges, edges.size() - offset)));
  }
  Observed observed;
  Capture(*algorithm, &observed);
  return observed;
}

void ExpectIdentical(const Observed& expected, const Observed& actual,
                     const std::string& label) {
  EXPECT_EQ(expected.solution.cover, actual.solution.cover) << label;
  EXPECT_EQ(expected.solution.certificate, actual.solution.certificate)
      << label;
  EXPECT_EQ(expected.state, actual.state) << label;
  EXPECT_EQ(expected.peak_words, actual.peak_words) << label;
}

class BatchEquivalence : public testing::TestWithParam<std::string> {};

TEST_P(BatchEquivalence, EveryBatchPartitionMatchesPerEdge) {
  const EdgeStream& stream = TestStream();
  const Observed reference = RunPerEdge(GetParam(), stream);
  for (size_t batch_edges :
       {size_t{1}, size_t{7}, size_t{64}, stream.edges.size()}) {
    ExpectIdentical(reference, RunBatched(GetParam(), stream, batch_edges),
                    GetParam() + " batch=" + std::to_string(batch_edges));
  }
}

// The supervisor's batched delivery over a fault-injected source must
// match a per-edge loop applying the same skip/retry handling: faults
// change which edges arrive, batching must not change anything else.
TEST_P(BatchEquivalence, SupervisedFaultyDeliveryMatchesPerEdge) {
  const EdgeStream& stream = TestStream();
  const FaultSchedule schedule = FaultSchedule::AllKinds(99);

  auto reference_algorithm = MakeAlgorithmByName(GetParam(), {});
  {
    VectorEdgeSource base(stream);
    FaultInjector source(&base, schedule);
    reference_algorithm->Begin(source.Meta());
    Edge edge;
    for (;;) {
      const ReadStatus status = source.Next(&edge);
      if (status == ReadStatus::kEnd) break;
      if (status == ReadStatus::kOk) reference_algorithm->ProcessEdge(edge);
      // kTransient: retry; kCorrupt: skip — as the supervisor does.
    }
  }
  Observed reference;
  reference.solution = reference_algorithm->Finalize();
  StateEncoder reference_encoder;
  reference_algorithm->EncodeState(&reference_encoder);
  reference.state = reference_encoder.Words();
  reference.peak_words = reference_algorithm->Meter().PeakWords();

  auto supervised_algorithm = MakeAlgorithmByName(GetParam(), {});
  VectorEdgeSource base(stream);
  FaultInjector source(&base, schedule);
  RunReport report =
      RunSupervisor(SupervisorOptions{}).Run(*supervised_algorithm, source);
  ASSERT_TRUE(report.error.empty()) << report.error;
  ASSERT_TRUE(report.completed);

  Observed supervised;
  supervised.solution = report.solution;
  StateEncoder supervised_encoder;
  supervised_algorithm->EncodeState(&supervised_encoder);
  supervised.state = supervised_encoder.Words();
  supervised.peak_words = supervised_algorithm->Meter().PeakWords();

  ExpectIdentical(reference, supervised, GetParam() + " supervised");
}

// Replaying the same stream from disk must be bit-identical to the
// in-memory run regardless of the file format it was stored in, which
// backend read it, and whether the pipeline decoder was in front — the
// contract that makes v3 + prefetch a pure performance change.
TEST_P(BatchEquivalence, FileReplayMatchesInMemoryAcrossFormats) {
  const EdgeStream& stream = TestStream();
  const Observed reference = RunPerEdge(GetParam(), stream);

  for (StreamFormat format :
       {StreamFormat::kV1, StreamFormat::kV2, StreamFormat::kV3}) {
    // PID-qualified: the forced-SIMD-tier ctest matrix runs several
    // instances of this binary concurrently on the same TempDir.
    const std::string path = testing::TempDir() + "/bequiv_" +
                             std::to_string(getpid()) + "_" + GetParam() +
                             "_v" +
                             std::to_string(uint32_t(format)) + ".bin";
    std::string error;
    ASSERT_TRUE(WriteStreamFile(stream, path, format, &error)) << error;
    for (bool prefetch : {false, true}) {
      for (bool use_mmap : {true, false}) {
        StreamReadOptions options;
        options.prefetch = prefetch;
        options.use_mmap = use_mmap;
        auto reader = OpenBatchEdgeReader(path, options, &error);
        ASSERT_NE(reader, nullptr) << error;
        auto algorithm = MakeAlgorithmByName(GetParam(), {});
        algorithm->Begin(reader->Meta());
        for (std::span<const Edge> batch = reader->NextBatch();
             !batch.empty(); batch = reader->NextBatch()) {
          algorithm->ProcessEdgeBatch(batch);
        }
        Observed observed;
        Capture(*algorithm, &observed);
        ExpectIdentical(reference, observed,
                        GetParam() + " v" +
                            std::to_string(uint32_t(format)) +
                            (prefetch ? " prefetch" : " sync") +
                            (use_mmap ? " mmap" : " stdio"));
      }
    }
    std::remove(path.c_str());
  }
}

std::string SafeName(const testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, BatchEquivalence,
                         testing::ValuesIn(RegisteredAlgorithmNames()),
                         SafeName);

}  // namespace
}  // namespace setcover
