#include "util/serialize.h"

#include <gtest/gtest.h>

#include "core/registry.h"
#include "instance/generators.h"
#include "stream/orderings.h"
#include "util/rng.h"

namespace setcover {
namespace {

TEST(SerializeTest, U32VectorPacksTwoPerWord) {
  StateEncoder encoder;
  encoder.PutU32Vector({1, 2, 3, 4});
  // 1 length word + 2 payload words.
  ASSERT_EQ(encoder.SizeWords(), 3u);
  EXPECT_EQ(encoder.Words()[0], 4u);
  EXPECT_EQ(encoder.Words()[1], 1u | (uint64_t{2} << 32));
  EXPECT_EQ(encoder.Words()[2], 3u | (uint64_t{4} << 32));
}

TEST(SerializeTest, U32VectorOddLength) {
  StateEncoder encoder;
  encoder.PutU32Vector({7, 8, 9});
  ASSERT_EQ(encoder.SizeWords(), 3u);
  EXPECT_EQ(encoder.Words()[2], 9u);
}

TEST(SerializeTest, EmptyVectors) {
  StateEncoder encoder;
  encoder.PutU32Vector({});
  encoder.PutBoolVector({});
  EXPECT_EQ(encoder.SizeWords(), 2u);  // two length words, no payload
}

TEST(SerializeTest, BoolVectorPacksBits) {
  StateEncoder encoder;
  std::vector<bool> bits(65, false);
  bits[0] = true;
  bits[64] = true;
  encoder.PutBoolVector(bits);
  ASSERT_EQ(encoder.SizeWords(), 3u);  // length + 2 bit words
  EXPECT_EQ(encoder.Words()[0], 65u);
  EXPECT_EQ(encoder.Words()[1], 1u);
  EXPECT_EQ(encoder.Words()[2], 1u);
}

TEST(SerializeTest, SetAndMapAreCanonical) {
  std::unordered_set<uint32_t> a = {5, 1, 9};
  std::unordered_set<uint32_t> b = {9, 5, 1};
  StateEncoder ea, eb;
  ea.PutSet(a);
  eb.PutSet(b);
  EXPECT_EQ(ea.Words(), eb.Words());

  std::unordered_map<uint32_t, uint32_t> ma = {{2, 20}, {1, 10}};
  std::unordered_map<uint32_t, uint32_t> mb = {{1, 10}, {2, 20}};
  StateEncoder ema, emb;
  ema.PutMap(ma);
  emb.PutMap(mb);
  EXPECT_EQ(ema.Words(), emb.Words());
  // 1 length + 2 pair words.
  EXPECT_EQ(ema.SizeWords(), 3u);
}

TEST(SerializeTest, AlgorithmsEncodeDeterministically) {
  Rng rng(1);
  PlantedCoverParams p;
  p.num_elements = 64;
  p.num_sets = 256;
  p.planted_cover_size = 4;
  auto inst = GeneratePlantedCover(p, rng);
  auto stream = RandomOrderStream(inst, rng);

  for (const std::string& name : RegisteredAlgorithmNames()) {
    auto a1 = MakeAlgorithmByName(name, {.seed = 7});
    auto a2 = MakeAlgorithmByName(name, {.seed = 7});
    a1->Begin(stream.meta);
    a2->Begin(stream.meta);
    for (size_t i = 0; i < stream.size() / 2; ++i) {
      a1->ProcessEdge(stream.edges[i]);
      a2->ProcessEdge(stream.edges[i]);
    }
    StateEncoder e1, e2;
    a1->EncodeState(&e1);
    a2->EncodeState(&e2);
    EXPECT_EQ(e1.Words(), e2.Words()) << name;
  }
}

TEST(SerializeTest, EncodedSizeTracksMeterScale) {
  // The literal message and the metered working set must agree on the
  // order of magnitude for the algorithms that implement EncodeState.
  Rng rng(2);
  PlantedCoverParams p;
  p.num_elements = 128;
  p.num_sets = 4096;
  p.planted_cover_size = 4;
  auto inst = GeneratePlantedCover(p, rng);
  auto stream = RandomOrderStream(inst, rng);

  for (const std::string& name :
       {std::string("kk"), std::string("adversarial-level"),
        std::string("random-order"), std::string("element-sampling")}) {
    auto algorithm = MakeAlgorithmByName(name, {.seed = 3});
    algorithm->Begin(stream.meta);
    for (const Edge& e : stream.edges) algorithm->ProcessEdge(e);
    StateEncoder encoder;
    algorithm->EncodeState(&encoder);
    ASSERT_GT(encoder.SizeWords(), 0u) << name;
    size_t metered = algorithm->Meter().CurrentWords();
    EXPECT_LT(encoder.SizeWords(), 4 * metered + 64) << name;
    EXPECT_GT(8 * encoder.SizeWords() + 64, metered) << name;
  }
}

TEST(SerializeTest, StateWordsUsesEncodingWhenAvailable) {
  Rng rng(3);
  PlantedCoverParams p;
  p.num_elements = 32;
  p.num_sets = 64;
  p.planted_cover_size = 2;
  auto inst = GeneratePlantedCover(p, rng);
  auto stream = RandomOrderStream(inst, rng);
  auto algorithm = MakeAlgorithmByName("kk", {.seed = 5});
  algorithm->Begin(stream.meta);
  for (const Edge& e : stream.edges) algorithm->ProcessEdge(e);
  StateEncoder encoder;
  algorithm->EncodeState(&encoder);
  EXPECT_EQ(algorithm->StateWords(), encoder.SizeWords());
}

TEST(SerializeTest, StateWordsMatchesEncodeSizeForEveryAlgorithm) {
  // StateWords() is O(1) arithmetic (no encode) since it sits on the
  // hot path of the communication experiments; this pins each override
  // to the size a real encode produces, at many points mid-stream.
  Rng rng(7);
  UniformRandomParams p;
  p.num_elements = 48;
  p.num_sets = 64;
  auto inst = GenerateUniformRandom(p, rng);
  auto stream = RandomOrderStream(inst, rng);

  for (const std::string& name : RegisteredAlgorithmNames()) {
    auto algorithm = MakeAlgorithmByName(name, {.seed = 13});
    algorithm->Begin(stream.meta);
    size_t processed = 0;
    auto check = [&] {
      StateEncoder encoder;
      algorithm->EncodeState(&encoder);
      EXPECT_EQ(algorithm->StateWords(), encoder.SizeWords())
          << name << " after " << processed << " edges";
    };
    check();
    for (const Edge& e : stream.edges) {
      algorithm->ProcessEdge(e);
      if (++processed % 37 == 0) check();
    }
    check();
  }
}

TEST(SerializeTest, EncodedSizeHelpersMatchTheEncoder) {
  for (size_t count : {size_t{0}, size_t{1}, size_t{2}, size_t{63},
                       size_t{64}, size_t{65}, size_t{1000}}) {
    StateEncoder u32;
    u32.PutU32Vector(std::vector<uint32_t>(count, 5));
    EXPECT_EQ(u32.SizeWords(), EncodedU32VectorWords(count)) << count;

    StateEncoder bools;
    bools.PutBoolVector(std::vector<bool>(count, true));
    EXPECT_EQ(bools.SizeWords(), EncodedBoolVectorWords(count)) << count;

    StateEncoder set;
    std::unordered_set<uint32_t> s;
    for (size_t i = 0; i < count; ++i) s.insert(uint32_t(i));
    set.PutSet(s);
    EXPECT_EQ(set.SizeWords(), EncodedSetWords(count)) << count;

    StateEncoder map;
    std::unordered_map<uint32_t, uint32_t> m;
    for (size_t i = 0; i < count; ++i) m[uint32_t(i)] = uint32_t(i);
    map.PutMap(m);
    EXPECT_EQ(map.SizeWords(), EncodedMapWords(count)) << count;
  }
}

}  // namespace
}  // namespace setcover
