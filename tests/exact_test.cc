#include "offline/exact.h"

#include <gtest/gtest.h>

#include "instance/generators.h"
#include "instance/validator.h"
#include "util/rng.h"

namespace setcover {
namespace {

TEST(ExactTest, FindsObviousOptimum) {
  auto inst = SetCoverInstance::FromSets(
      6, {{0}, {1}, {0, 1, 2, 3, 4, 5}, {4, 5}});
  auto sol = ExactCover(inst);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->cover.size(), 1u);
}

TEST(ExactTest, PartitionOptimum) {
  auto inst = GeneratePartition(12, 4);
  auto sol = ExactCover(inst);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->cover.size(), 4u);
}

TEST(ExactTest, TwoSetCoverBeatsGreedyTrap) {
  // The classic greedy trap: greedy takes the big middle set (size 4)
  // and then needs 2 more; OPT is the two side sets.
  auto inst = SetCoverInstance::FromSets(
      6, {{0, 1, 2}, {3, 4, 5}, {1, 2, 3, 4}});
  auto sol = ExactCover(inst);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->cover.size(), 2u);
}

TEST(ExactTest, SolutionIsValid) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    UniformRandomParams params;
    params.num_elements = 12;
    params.num_sets = 10;
    params.max_set_size = 5;
    auto inst = GenerateUniformRandom(params, rng);
    auto sol = ExactCover(inst);
    ASSERT_TRUE(sol.has_value());
    auto check = ValidateSolution(inst, *sol);
    EXPECT_TRUE(check.ok) << check.error;
  }
}

TEST(ExactTest, NoSolutionSmallerExists) {
  // Brute-force cross-check on a tiny instance: try all single sets.
  auto inst = SetCoverInstance::FromSets(
      5, {{0, 1}, {2, 3}, {3, 4}, {0, 4}, {1, 2}});
  auto sol = ExactCover(inst);
  ASSERT_TRUE(sol.has_value());
  for (SetId s = 0; s < inst.NumSets(); ++s) {
    EXPECT_LT(inst.Set(s).size(), inst.NumElements());
  }
  EXPECT_GE(sol->cover.size(), 2u);
  EXPECT_LE(sol->cover.size(), 3u);
}

TEST(ExactTest, RefusesLargeUniverse) {
  auto inst = GeneratePartition(30, 3);
  EXPECT_FALSE(ExactCover(inst, /*max_elements=*/24).has_value());
  EXPECT_TRUE(ExactCover(inst, /*max_elements=*/30).has_value());
}

TEST(ExactTest, RefusesInfeasible) {
  auto inst = SetCoverInstance::FromSets(3, {{0}});
  EXPECT_FALSE(ExactCover(inst).has_value());
}

TEST(ExactTest, SingleElement) {
  auto inst = SetCoverInstance::FromSets(1, {{0}});
  auto sol = ExactCover(inst);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->cover.size(), 1u);
}

}  // namespace
}  // namespace setcover
