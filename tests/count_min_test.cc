#include "util/count_min.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace setcover {
namespace {

TEST(CountMinTest, NeverUndercounts) {
  CountMinSketch sketch(64, 4, 1);
  std::vector<uint64_t> truth(100, 0);
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    uint64_t key = rng.UniformInt(100);
    sketch.Add(key);
    ++truth[key];
  }
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_GE(sketch.Estimate(key), truth[key]);
  }
}

TEST(CountMinTest, ExactForFewKeysInWideSketch) {
  CountMinSketch sketch(4096, 4, 3);
  sketch.Add(7, 10);
  sketch.Add(11, 3);
  EXPECT_EQ(sketch.Estimate(7), 10u);
  EXPECT_EQ(sketch.Estimate(11), 3u);
  EXPECT_EQ(sketch.Estimate(99), 0u);
}

TEST(CountMinTest, ErrorWithinEpsilonTotal) {
  double epsilon = 0.01;
  auto sketch = CountMinSketch::WithGuarantees(epsilon, 0.01, 5);
  Rng rng(6);
  std::vector<uint64_t> truth(1000, 0);
  const int total = 100000;
  for (int i = 0; i < total; ++i) {
    uint64_t key = rng.UniformInt(1000);
    sketch.Add(key);
    ++truth[key];
  }
  int violations = 0;
  for (uint64_t key = 0; key < 1000; ++key) {
    if (sketch.Estimate(key) > truth[key] + uint64_t(epsilon * total)) {
      ++violations;
    }
  }
  EXPECT_LE(violations, 20);  // δ = 1% per key, generous slack
}

TEST(CountMinTest, HeavyHitterDetection) {
  // The use case in Algorithm 1's epoch 0: one key far above threshold
  // must be detected, light keys must not cross.
  CountMinSketch sketch(512, 4, 7);
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) sketch.Add(42);
  for (int i = 0; i < 2000; ++i) sketch.Add(rng.UniformInt(10000) + 100);
  EXPECT_GE(sketch.Estimate(42), 1000u);
  int false_heavy = 0;
  for (uint64_t key = 100; key < 1100; ++key) {
    if (sketch.Estimate(key) >= 500) ++false_heavy;
  }
  EXPECT_EQ(false_heavy, 0);
}

TEST(CountMinTest, GeometryFromGuarantees) {
  auto sketch = CountMinSketch::WithGuarantees(0.001, 0.01, 9);
  EXPECT_GE(sketch.Width(), 2718u);
  EXPECT_GE(sketch.Depth(), 4u);
  EXPECT_GE(sketch.WordsUsed(), sketch.Width() * sketch.Depth());
}

TEST(CountMinTest, ClearResets) {
  CountMinSketch sketch(64, 2, 11);
  sketch.Add(5, 100);
  sketch.Clear();
  EXPECT_EQ(sketch.Estimate(5), 0u);
  EXPECT_EQ(sketch.TotalCount(), 0u);
}

TEST(CountMinTest, CountsWithMultiplicity) {
  CountMinSketch sketch(64, 3, 13);
  sketch.Add(1, 5);
  sketch.Add(1, 7);
  EXPECT_GE(sketch.Estimate(1), 12u);
  EXPECT_EQ(sketch.TotalCount(), 12u);
}

TEST(CountMinTest, DegenerateGeometryClamped) {
  CountMinSketch sketch(0, 0, 15);
  sketch.Add(3);
  EXPECT_GE(sketch.Estimate(3), 1u);
  EXPECT_EQ(sketch.Width(), 1u);
  EXPECT_EQ(sketch.Depth(), 1u);
}

}  // namespace
}  // namespace setcover
