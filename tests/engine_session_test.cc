// engine::Session — the push-style drive loop under the session
// server. The acceptance bar mirrors engine_equivalence_test: for every
// registered algorithm, a Session fed the stream in client-sized
// batches must land bit-identical to engine::Execute over the whole
// stream — covers, certificates, meter readings — at any batch sizing,
// with and without fault injection, and across kill/resume with client
// replay from the durable exactly-once cursor.

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "engine/engine.h"
#include "engine/session.h"
#include "instance/generators.h"
#include "stream/orderings.h"
#include "util/rng.h"

namespace setcover {
namespace {

struct Fixture {
  SetCoverInstance instance;
  EdgeStream stream;
};

Fixture MakeFixture(uint64_t seed) {
  Rng rng(seed);
  UniformRandomParams p;
  p.num_elements = 60;
  p.num_sets = 80;
  Fixture fixture{GenerateUniformRandom(p, rng), {}};
  fixture.stream = OrderedStream(fixture.instance, StreamOrder::kRandom, rng);
  return fixture;
}

std::string TempPath(const std::string& tag) {
  std::string name = "session_" + tag;
  for (char& c : name)
    if (c == '-') c = '_';
  return testing::TempDir() + name;
}

engine::SessionConfig BaseConfig(const std::string& algorithm,
                                 const Fixture& fixture) {
  engine::SessionConfig config;
  config.algorithm = algorithm;
  config.options.seed = 21;
  config.meta = fixture.stream.meta;
  return config;
}

engine::RunReport Oracle(const std::string& algorithm,
                         const Fixture& fixture,
                         std::optional<FaultSchedule> faults) {
  engine::RunConfig config;
  config.algorithm = algorithm;
  config.options.seed = 21;
  config.source = engine::SourceSpec::InMemory(fixture.stream);
  config.faults = faults;
  engine::RunReport report = engine::Execute(config);
  EXPECT_TRUE(report.completed) << algorithm << ": " << report.error;
  return report;
}

/// Feeds the whole fixture stream into `session` as sequenced batches
/// of `batch_edges`, starting from the session's durable cursor.
void FeedFrom(engine::Session* session, const Fixture& fixture,
              size_t batch_edges) {
  const std::span<const Edge> edges(fixture.stream.edges);
  const uint64_t total = (edges.size() + batch_edges - 1) / batch_edges;
  for (uint64_t seq = session->LastSequence() + 1; seq <= total; ++seq) {
    const size_t begin = size_t(seq - 1) * batch_edges;
    const size_t count = std::min(batch_edges, edges.size() - begin);
    std::string error;
    const engine::IngestResult result =
        session->Ingest(seq, edges.subspan(begin, count), &error);
    ASSERT_EQ(result.status, engine::IngestStatus::kApplied)
        << "seq=" << seq << ": " << error;
  }
}

class SessionSweep : public testing::TestWithParam<std::string> {};

// The equivalence contract, clean stream: any ingest batch sizing ==
// one engine::Execute over the concatenated edges.
TEST_P(SessionSweep, MatchesExecuteAtAnyBatchSizing) {
  Fixture fixture = MakeFixture(101);
  engine::RunReport expected = Oracle(GetParam(), fixture, std::nullopt);

  for (size_t batch_edges :
       {size_t{1}, size_t{7}, size_t{64}, fixture.stream.size()}) {
    const std::string context =
        GetParam() + " batch=" + std::to_string(batch_edges);
    std::string error;
    auto session = engine::Session::Open(BaseConfig(GetParam(), fixture),
                                         /*resume=*/false, &error);
    ASSERT_NE(session, nullptr) << context << ": " << error;
    FeedFrom(session.get(), fixture, batch_edges);

    const engine::RunReport& report = session->Finalize();
    EXPECT_EQ(report.solution.cover, expected.solution.cover) << context;
    EXPECT_EQ(report.solution.certificate, expected.solution.certificate)
        << context;
    EXPECT_EQ(report.edges_delivered, expected.edges_delivered) << context;
    EXPECT_EQ(report.current_words, expected.current_words) << context;
    EXPECT_EQ(report.uncovered_elements, expected.uncovered_elements)
        << context;
  }
}

// Same contract under deterministic stream damage: per-batch fault
// injectors anchored at absolute positions must replicate the
// whole-stream fault sequence exactly.
TEST_P(SessionSweep, MatchesExecuteUnderFaults) {
  Fixture fixture = MakeFixture(131);
  const FaultSchedule faults = FaultSchedule::AllKinds(77);
  engine::RunReport expected = Oracle(GetParam(), fixture, faults);

  for (size_t batch_edges : {size_t{5}, size_t{64}}) {
    const std::string context =
        GetParam() + " batch=" + std::to_string(batch_edges);
    engine::SessionConfig config = BaseConfig(GetParam(), fixture);
    config.faults = faults;
    std::string error;
    auto session =
        engine::Session::Open(config, /*resume=*/false, &error);
    ASSERT_NE(session, nullptr) << context << ": " << error;
    FeedFrom(session.get(), fixture, batch_edges);

    const engine::RunReport& report = session->Finalize();
    EXPECT_EQ(report.solution.cover, expected.solution.cover) << context;
    EXPECT_EQ(report.solution.certificate, expected.solution.certificate)
        << context;
    EXPECT_EQ(report.edges_delivered, expected.edges_delivered) << context;
    EXPECT_EQ(report.corrupt_records_skipped,
              expected.corrupt_records_skipped)
        << context;
    EXPECT_EQ(report.current_words, expected.current_words) << context;
    EXPECT_FALSE(report.degraded) << context;
  }
}

// Kill/resume: drop the Session object mid-stream (the server died),
// reopen from its checkpoint, replay from the durable cursor — the
// exactly-once dedup swallows the replayed prefix and the final state
// is bit-identical to the uninterrupted oracle.
TEST_P(SessionSweep, KillResumeAndClientReplayIsBitIdentical) {
  Fixture fixture = MakeFixture(101);
  engine::RunReport expected = Oracle(GetParam(), fixture, std::nullopt);
  const std::string path = TempPath("resume_" + GetParam() + ".sckp");
  constexpr size_t kBatch = 16;

  for (uint64_t kill_after_batches : {uint64_t{1}, uint64_t{5}}) {
    const std::string context =
        GetParam() + " kill_after=" + std::to_string(kill_after_batches);
    engine::SessionConfig config = BaseConfig(GetParam(), fixture);
    config.checkpoint_path = path;
    config.checkpoint_every = kBatch;  // every batch checkpoints

    std::string error;
    auto first = engine::Session::Open(config, /*resume=*/false, &error);
    ASSERT_NE(first, nullptr) << context << ": " << error;
    const std::span<const Edge> edges(fixture.stream.edges);
    for (uint64_t seq = 1; seq <= kill_after_batches; ++seq) {
      const size_t begin = size_t(seq - 1) * kBatch;
      const engine::IngestResult result = first->Ingest(
          seq, edges.subspan(begin, std::min(kBatch, edges.size() - begin)),
          &error);
      ASSERT_EQ(result.status, engine::IngestStatus::kApplied)
          << context << ": " << error;
      ASSERT_EQ(result.checkpoints_written, 1u) << context;
    }
    first.reset();  // the kill: no finalize, no drain checkpoint

    auto resumed = engine::Session::Open(config, /*resume=*/true, &error);
    ASSERT_NE(resumed, nullptr) << context << ": " << error;
    EXPECT_TRUE(resumed->Resumed()) << context;
    EXPECT_EQ(resumed->LastSequence(), kill_after_batches) << context;

    // The client replays from the start; applied sequences are
    // acknowledged as duplicates without touching state.
    std::string dup_error;
    const engine::IngestResult dup = resumed->Ingest(
        1, edges.subspan(0, std::min(kBatch, edges.size())), &dup_error);
    EXPECT_EQ(dup.status, engine::IngestStatus::kDuplicate) << context;

    FeedFrom(resumed.get(), fixture, kBatch);
    const engine::RunReport& report = resumed->Finalize();
    EXPECT_EQ(report.solution.cover, expected.solution.cover) << context;
    EXPECT_EQ(report.solution.certificate, expected.solution.certificate)
        << context;
    EXPECT_EQ(report.edges_delivered, expected.edges_delivered) << context;
    EXPECT_EQ(report.current_words, expected.current_words) << context;
    std::remove(path.c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, SessionSweep,
                         testing::ValuesIn(RegisteredAlgorithmNames()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// --- Non-parameterized edge cases -----------------------------------

TEST(Session, RejectsSequenceGapsAndAcknowledgesDuplicates) {
  Fixture fixture = MakeFixture(11);
  std::string error;
  auto session = engine::Session::Open(BaseConfig("greedy-threshold", fixture),
                                       /*resume=*/false, &error);
  if (session == nullptr) {
    // Registry name differs across configurations; fall back to the
    // first registered algorithm.
    session = engine::Session::Open(
        BaseConfig(RegisteredAlgorithmNames().front(), fixture),
        /*resume=*/false, &error);
  }
  ASSERT_NE(session, nullptr) << error;
  const std::span<const Edge> edges(fixture.stream.edges);

  EXPECT_EQ(session->Ingest(2, edges.subspan(0, 4), &error).status,
            engine::IngestStatus::kOutOfOrder);
  EXPECT_EQ(session->Ingest(1, edges.subspan(0, 4), &error).status,
            engine::IngestStatus::kApplied);
  const uint64_t delivered = session->Stats().edges_delivered;
  EXPECT_EQ(session->Ingest(1, edges.subspan(0, 4), &error).status,
            engine::IngestStatus::kDuplicate);
  EXPECT_EQ(session->Stats().edges_delivered, delivered)
      << "a duplicate must not re-apply edges";
  EXPECT_EQ(session->Stats().duplicate_ingests, 1u);
}

TEST(Session, FinalizeIsIdempotentAndBlocksFurtherIngest) {
  Fixture fixture = MakeFixture(12);
  const std::string name = RegisteredAlgorithmNames().front();
  std::string error;
  auto session = engine::Session::Open(BaseConfig(name, fixture),
                                       /*resume=*/false, &error);
  ASSERT_NE(session, nullptr) << error;
  const std::span<const Edge> edges(fixture.stream.edges);
  ASSERT_EQ(session->Ingest(1, edges, &error).status,
            engine::IngestStatus::kApplied);

  const engine::RunReport& first = session->Finalize();
  const engine::RunReport& second = session->Finalize();
  EXPECT_EQ(&first, &second) << "finalize must return the cached report";
  EXPECT_EQ(session->Ingest(2, edges.subspan(0, 1), &error).status,
            engine::IngestStatus::kFailed);
}

TEST(Session, ResumeWithoutCheckpointFileStartsFresh) {
  Fixture fixture = MakeFixture(13);
  engine::SessionConfig config =
      BaseConfig(RegisteredAlgorithmNames().front(), fixture);
  config.checkpoint_path = TempPath("never_written.sckp");
  std::remove(config.checkpoint_path.c_str());
  std::string error;
  auto session = engine::Session::Open(config, /*resume=*/true, &error);
  ASSERT_NE(session, nullptr) << error;
  EXPECT_FALSE(session->Resumed());
  EXPECT_EQ(session->LastSequence(), 0u);
}

TEST(Session, ResumeWithCorruptCheckpointFailsLoudly) {
  Fixture fixture = MakeFixture(14);
  engine::SessionConfig config =
      BaseConfig(RegisteredAlgorithmNames().front(), fixture);
  config.checkpoint_path = TempPath("corrupt.sckp");
  std::FILE* out = std::fopen(config.checkpoint_path.c_str(), "wb");
  ASSERT_NE(out, nullptr);
  std::fputs("not a checkpoint", out);
  std::fclose(out);

  std::string error;
  auto session = engine::Session::Open(config, /*resume=*/true, &error);
  EXPECT_EQ(session, nullptr);
  EXPECT_FALSE(error.empty());
  std::remove(config.checkpoint_path.c_str());
}

}  // namespace
}  // namespace setcover
