#include "offline/lp_bound.h"

#include <cmath>

#include <gtest/gtest.h>

#include "instance/generators.h"
#include "offline/exact.h"
#include "offline/greedy.h"
#include "util/rng.h"

namespace setcover {
namespace {

TEST(LpBoundTest, ExactOnPartitionInstances) {
  auto inst = GeneratePartition(120, 6);
  EXPECT_NEAR(DualPackingLowerBound(inst), 6.0, 1e-9);
}

TEST(LpBoundTest, NeverExceedsExactOptimum) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    UniformRandomParams p;
    p.num_elements = 14;
    p.num_sets = 14;
    p.max_set_size = 6;
    auto inst = GenerateUniformRandom(p, rng);
    auto exact = ExactCover(inst);
    ASSERT_TRUE(exact.has_value());
    double bound = DualPackingLowerBound(inst, 3, 100 + trial);
    EXPECT_LE(bound, double(exact->cover.size()) + 1e-9);
    EXPECT_GT(bound, 0.0);
  }
}

TEST(LpBoundTest, CertificateIsDualFeasible) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    UniformRandomParams p;
    p.num_elements = 60;
    p.num_sets = 80;
    p.max_set_size = 9;
    auto inst = GenerateUniformRandom(p, rng);
    EXPECT_LE(DualPackingMaxLoad(inst, 3, trial), 1.0 + 1e-9);
  }
}

TEST(LpBoundTest, ImprovementPassesNeverHurt) {
  Rng rng(3);
  UniformRandomParams p;
  p.num_elements = 100;
  p.num_sets = 120;
  p.max_set_size = 10;
  auto inst = GenerateUniformRandom(p, rng);
  double base = DualPackingLowerBound(inst, 0, 7);
  double improved = DualPackingLowerBound(inst, 3, 7);
  EXPECT_GE(improved, base - 1e-9);
}

TEST(LpBoundTest, WithinLnNOfGreedy) {
  // greedy ≤ (ln n + 1)·OPT and bound ≤ OPT, so greedy/bound ≤ ln n + 1
  // whenever the LP gap is small; verify with slack for the gap.
  Rng rng(4);
  PlantedCoverParams p;
  p.num_elements = 200;
  p.num_sets = 300;
  p.planted_cover_size = 8;
  auto inst = GeneratePlantedCover(p, rng);
  double bound = DualPackingLowerBound(inst, 3, 9);
  auto greedy = GreedyCover(inst);
  EXPECT_GE(bound, 1.0);
  EXPECT_LE(double(greedy.cover.size()),
            3.0 * (std::log(200.0) + 1.0) * bound);
}

TEST(LpBoundTest, SingletonUniverse) {
  auto inst = SetCoverInstance::FromSets(1, {{0}});
  EXPECT_NEAR(DualPackingLowerBound(inst), 1.0, 1e-9);
}

TEST(LpBoundTest, IsolatedElementsContributeNothing) {
  auto inst = SetCoverInstance::FromSets(3, {{0, 1}});
  // Element 2 is uncoverable; the dual ignores it.
  double bound = DualPackingLowerBound(inst);
  EXPECT_NEAR(bound, 1.0, 1e-9);
}

TEST(LpBoundTest, DeterministicGivenSeed) {
  Rng rng(5);
  UniformRandomParams p;
  p.num_elements = 50;
  p.num_sets = 60;
  auto inst = GenerateUniformRandom(p, rng);
  EXPECT_DOUBLE_EQ(DualPackingLowerBound(inst, 2, 42),
                   DualPackingLowerBound(inst, 2, 42));
}

}  // namespace
}  // namespace setcover
