#include "core/adversarial_level.h"

#include <cmath>

#include <gtest/gtest.h>

#include "instance/generators.h"
#include "tests/test_util.h"

namespace setcover {
namespace {

SetCoverInstance PlantedInstance(uint32_t n, uint32_t m, uint32_t opt,
                                 uint64_t seed) {
  Rng rng(seed);
  PlantedCoverParams params;
  params.num_elements = n;
  params.num_sets = m;
  params.planted_cover_size = opt;
  params.decoy_max_size = 4;
  return GeneratePlantedCover(params, rng);
}

TEST(AdversarialLevelTest, ValidCoverOnEveryOrder) {
  auto inst = PlantedInstance(100, 300, 4, 1);
  for (StreamOrder order :
       {StreamOrder::kRandom, StreamOrder::kSetMajor,
        StreamOrder::kElementMajor, StreamOrder::kRoundRobinSets,
        StreamOrder::kLargeSetsLast}) {
    AdversarialLevelAlgorithm algorithm(21);
    RunAndValidate(algorithm, inst, order, 2);
  }
}

TEST(AdversarialLevelTest, AlphaClampedToTwoSqrtN) {
  AdversarialLevelParams params;
  params.alpha = 1.0;  // far below 2√n
  AdversarialLevelAlgorithm algorithm(1, params);
  auto inst = PlantedInstance(100, 100, 2, 2);
  RunAndValidate(algorithm, inst, StreamOrder::kRandom, 3);
  EXPECT_DOUBLE_EQ(algorithm.EffectiveAlpha(), 2.0 * std::sqrt(100.0));
}

TEST(AdversarialLevelTest, DefaultAlphaIsTwoSqrtN) {
  AdversarialLevelAlgorithm algorithm(1);
  auto inst = PlantedInstance(64, 100, 2, 3);
  RunAndValidate(algorithm, inst, StreamOrder::kRandom, 4);
  EXPECT_DOUBLE_EQ(algorithm.EffectiveAlpha(), 16.0);
}

TEST(AdversarialLevelTest, SpaceShrinksAsAlphaGrows) {
  // Theorem 4: space Õ(m·n/α²). Doubling α should substantially
  // reduce the promoted-set pool on a fixed instance.
  auto inst = PlantedInstance(256, 4096, 4, 4);
  double sqrt_n = 16.0;
  size_t promoted_small_alpha = 0, promoted_large_alpha = 0;
  for (int t = 0; t < 5; ++t) {
    AdversarialLevelParams small_params;
    small_params.alpha = 2.0 * sqrt_n;
    AdversarialLevelAlgorithm small_alpha(10 + t, small_params);
    RunAndValidate(small_alpha, inst, StreamOrder::kRandom, 20 + t);
    promoted_small_alpha += small_alpha.PeakPromotedSets();

    AdversarialLevelParams large_params;
    large_params.alpha = 8.0 * sqrt_n;
    AdversarialLevelAlgorithm large_alpha(10 + t, large_params);
    RunAndValidate(large_alpha, inst, StreamOrder::kRandom, 20 + t);
    promoted_large_alpha += large_alpha.PeakPromotedSets();
  }
  EXPECT_LT(promoted_large_alpha, promoted_small_alpha / 2);
}

TEST(AdversarialLevelTest, LevelHistogramTotalsM) {
  auto inst = PlantedInstance(100, 500, 4, 5);
  AdversarialLevelAlgorithm algorithm(3);
  RunAndValidate(algorithm, inst, StreamOrder::kRandom, 6);
  auto hist = algorithm.LevelHistogram();
  size_t total = 0;
  for (size_t c : hist) total += c;
  EXPECT_EQ(total, 500u);
}

TEST(AdversarialLevelTest, DeterministicGivenSeed) {
  auto inst = PlantedInstance(60, 150, 3, 6);
  AdversarialLevelAlgorithm a(42), b(42);
  auto sa = RunAndValidate(a, inst, StreamOrder::kElementMajor, 7);
  auto sb = RunAndValidate(b, inst, StreamOrder::kElementMajor, 7);
  EXPECT_EQ(sa.cover, sb.cover);
}

TEST(AdversarialLevelTest, TinyInstances) {
  auto one = SetCoverInstance::FromSets(1, {{0}});
  AdversarialLevelAlgorithm a(1);
  EXPECT_EQ(RunAndValidate(a, one, StreamOrder::kSetMajor, 1).cover.size(),
            1u);
}

TEST(AdversarialLevelTest, CoverBoundedOnPlantedInstance) {
  // Expected ratio O(α log m); check with generous slack.
  const uint32_t n = 256;
  auto inst = PlantedInstance(n, 2048, 4, 7);
  AdversarialLevelAlgorithm algorithm(9);
  auto sol = RunAndValidate(algorithm, inst, StreamOrder::kElementMajor, 8);
  double alpha = 2.0 * std::sqrt(double(n));
  double bound = 8.0 * alpha * std::log2(2048.0) *
                 double(inst.PlantedCover().size());
  EXPECT_LE(double(sol.cover.size()), bound);
}

}  // namespace
}  // namespace setcover
