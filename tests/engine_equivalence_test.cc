// Engine equivalence — the acceptance bar for the src/engine/ refactor:
// for every registered algorithm, engine::Execute must produce
// bit-identical covers, certificates, meter readings, and checkpoint
// bytes to the legacy drive loops it replaced (the header-inline
// RunStream reference primitive, and a hand-rolled per-edge supervised
// driver for checkpoint bytes), across in-memory adversarial/random
// sources and stream files (v2 sync, v3 + prefetch), including
// kill-and-resume through the engine.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "engine/engine.h"
#include "instance/generators.h"
#include "instance/validator.h"
#include "run/checkpoint.h"
#include "stream/fault_injector.h"
#include "stream/orderings.h"
#include "stream/stream_file.h"
#include "util/rng.h"

namespace setcover {
namespace {

struct Fixture {
  SetCoverInstance instance;
  EdgeStream stream;
};

Fixture MakeFixture(uint64_t seed, StreamOrder order) {
  Rng rng(seed);
  UniformRandomParams p;
  p.num_elements = 60;
  p.num_sets = 80;
  Fixture fixture{GenerateUniformRandom(p, rng), {}};
  fixture.stream = OrderedStream(fixture.instance, order, rng);
  return fixture;
}

std::string TempPath(const std::string& tag) {
  std::string name = "engine_" + tag;
  for (char& c : name)
    if (c == '-') c = '_';
  return testing::TempDir() + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  return bytes.str();
}

class EngineSweep : public testing::TestWithParam<std::string> {};

// Fast in-memory path == the legacy RunStream reference primitive, on
// an adversarial (set-major) and a random-order stream. Covers,
// certificates, and both meter readings must match bit for bit.
TEST_P(EngineSweep, InMemoryExecuteMatchesRunStream) {
  for (StreamOrder order : {StreamOrder::kSetMajor, StreamOrder::kRandom}) {
    Fixture fixture = MakeFixture(101, order);
    auto reference = MakeAlgorithmByName(GetParam(), {.seed = 21});
    CoverSolution expected = RunStream(*reference, fixture.stream);

    engine::RunConfig config;
    config.algorithm = GetParam();
    config.options.seed = 21;
    config.source = engine::SourceSpec::InMemory(fixture.stream);
    engine::RunReport report = engine::Execute(config);

    const std::string context =
        GetParam() + " order=" + StreamOrderName(order);
    ASSERT_TRUE(report.completed) << context << ": " << report.error;
    EXPECT_EQ(report.algorithm_name, reference->Name()) << context;
    EXPECT_EQ(report.edges_delivered, fixture.stream.size()) << context;
    EXPECT_GE(report.stages.batches, 1u) << context;
    EXPECT_EQ(report.solution.cover, expected.cover) << context;
    EXPECT_EQ(report.solution.certificate, expected.certificate) << context;
    EXPECT_EQ(report.peak_words, reference->Meter().PeakWords()) << context;
    EXPECT_EQ(report.current_words, reference->Meter().CurrentWords())
        << context;
    EXPECT_EQ(report.meter_breakdown, reference->Meter().BreakdownString())
        << context;
  }
}

// File sources — v2 synchronous and v3 with the background prefetch
// decoder — must agree with RunStream over the same edges. (Peak words
// are compared only in NDEBUG builds: debug builds run RunStream's
// first-batch equivalence spot-check, which the file fast path, like
// the old RunStreamFromFile, never did.)
TEST_P(EngineSweep, FileExecuteMatchesRunStream) {
  Fixture fixture = MakeFixture(131, StreamOrder::kRandom);
  auto reference = MakeAlgorithmByName(GetParam(), {.seed = 33});
  CoverSolution expected = RunStream(*reference, fixture.stream);

  struct Variant {
    StreamFormat format;
    bool prefetch;
    const char* tag;
  };
  for (const Variant& variant :
       {Variant{StreamFormat::kV2, false, "v2_sync"},
        Variant{StreamFormat::kV3, true, "v3_prefetch"}}) {
    const std::string context = GetParam() + " " + variant.tag;
    const std::string path =
        TempPath("file_" + GetParam() + "_" + variant.tag + ".bin");
    std::string error;
    ASSERT_TRUE(WriteStreamFile(fixture.stream, path, variant.format, &error))
        << context << ": " << error;

    StreamReadOptions read_options;
    read_options.prefetch = variant.prefetch;
    engine::RunConfig config;
    config.algorithm = GetParam();
    config.options.seed = 33;
    config.source = engine::SourceSpec::File(path, read_options);
    engine::RunReport report = engine::Execute(config);

    ASSERT_TRUE(report.completed) << context << ": " << report.error;
    EXPECT_FALSE(report.degraded) << context;
    EXPECT_EQ(report.edges_delivered, fixture.stream.size()) << context;
    EXPECT_EQ(report.solution.cover, expected.cover) << context;
    EXPECT_EQ(report.solution.certificate, expected.certificate) << context;
    EXPECT_EQ(report.current_words, reference->Meter().CurrentWords())
        << context;
#ifdef NDEBUG
    EXPECT_EQ(report.peak_words, reference->Meter().PeakWords()) << context;
#endif
    std::remove(path.c_str());
  }
}

// Kill-and-resume driven entirely through engine::Execute: a run killed
// at edge k and resumed from its checkpoint must finish bit-identical
// to an uninterrupted engine run.
TEST_P(EngineSweep, KillAndResumeThroughEngineIsBitIdentical) {
  Fixture fixture = MakeFixture(101, StreamOrder::kRandom);
  const std::string path = TempPath("resume_" + GetParam() + ".sckp");

  engine::RunConfig base;
  base.algorithm = GetParam();
  base.options.seed = 21;
  base.source = engine::SourceSpec::InMemory(fixture.stream);
  engine::RunReport expected = engine::Execute(base);
  ASSERT_TRUE(expected.completed) << expected.error;

  for (uint64_t k : {uint64_t{1}, uint64_t{13}, uint64_t{64},
                     uint64_t{fixture.stream.size() - 1}}) {
    const std::string context = GetParam() + " k=" + std::to_string(k);

    engine::RunConfig kill = base;
    kill.checkpoint.path = path;
    kill.checkpoint.every = k;
    kill.stop_after = k;
    engine::RunReport killed = engine::Execute(kill);
    ASSERT_FALSE(killed.completed) << context;
    ASSERT_TRUE(killed.error.empty()) << context << ": " << killed.error;
    ASSERT_EQ(killed.checkpoints_written, 1u) << context;

    engine::RunConfig resume = base;
    resume.options.seed = 999;  // must be ignored: state comes from disk
    resume.checkpoint.path = path;
    resume.checkpoint.resume = true;
    engine::RunReport resumed = engine::Execute(resume);
    ASSERT_TRUE(resumed.completed) << context << ": " << resumed.error;
    EXPECT_TRUE(resumed.resumed) << context;
    EXPECT_EQ(resumed.resumed_at, k) << context;
    EXPECT_EQ(resumed.edges_delivered, fixture.stream.size()) << context;
    EXPECT_EQ(resumed.solution.cover, expected.solution.cover) << context;
    EXPECT_EQ(resumed.solution.certificate, expected.solution.certificate)
        << context;
    EXPECT_EQ(resumed.current_words, expected.current_words) << context;
  }
  std::remove(path.c_str());
}

// Checkpoint wire bytes: the engine's periodic checkpoint at edge k
// must be byte-identical to one written by a hand-rolled per-edge
// driver — same SCKP header, counters, and encoded state words.
TEST_P(EngineSweep, CheckpointBytesMatchPerEdgeOracle) {
  Fixture fixture = MakeFixture(101, StreamOrder::kRandom);
  const std::string engine_path = TempPath("bytes_a_" + GetParam() + ".sckp");
  const std::string oracle_path = TempPath("bytes_b_" + GetParam() + ".sckp");

  for (uint64_t k : {uint64_t{37}, uint64_t{128}}) {
    const std::string context = GetParam() + " k=" + std::to_string(k);

    engine::RunConfig config;
    config.algorithm = GetParam();
    config.options.seed = 21;
    config.source = engine::SourceSpec::InMemory(fixture.stream);
    config.checkpoint.path = engine_path;
    config.checkpoint.every = k;
    config.stop_after = k;
    engine::RunReport killed = engine::Execute(config);
    ASSERT_EQ(killed.checkpoints_written, 1u) << context;

    // Per-edge oracle: the pre-batching supervised loop in miniature.
    auto oracle = MakeAlgorithmByName(GetParam(), {.seed = 21});
    oracle->Begin(fixture.stream.meta);
    for (uint64_t i = 0; i < k; ++i) {
      oracle->ProcessEdge(fixture.stream.edges[i]);
    }
    StateEncoder encoder;
    oracle->EncodeState(&encoder);
    Checkpoint checkpoint;
    checkpoint.algorithm_name = oracle->Name();
    checkpoint.meta = fixture.stream.meta;
    checkpoint.stream_position = k;
    checkpoint.edges_delivered = k;
    checkpoint.state_words = encoder.Words();
    std::string error;
    ASSERT_TRUE(SaveCheckpoint(checkpoint, oracle_path, &error))
        << context << ": " << error;

    const std::string engine_bytes = ReadFileBytes(engine_path);
    ASSERT_FALSE(engine_bytes.empty()) << context;
    EXPECT_EQ(engine_bytes, ReadFileBytes(oracle_path)) << context;
  }
  std::remove(engine_path.c_str());
  std::remove(oracle_path.c_str());
}

// Execute's declarative fault spec must assemble the identical pipeline
// a caller would wire by hand (source -> FaultInjector -> Drive).
TEST_P(EngineSweep, FaultSpecMatchesManualAssembly) {
  Fixture fixture = MakeFixture(211, StreamOrder::kRandom);
  const FaultSchedule schedule = FaultSchedule::AllKinds(17, 0.04);

  auto manual = MakeAlgorithmByName(GetParam(), {.seed = 23});
  VectorEdgeSource base(fixture.stream);
  FaultInjector faulty(&base, schedule);
  engine::RunReport expected = engine::Drive({}, *manual, faulty);
  ASSERT_TRUE(expected.completed) << expected.error;

  engine::RunConfig config;
  config.algorithm = GetParam();
  config.options.seed = 23;
  config.source = engine::SourceSpec::InMemory(fixture.stream);
  config.faults = schedule;
  engine::RunReport report = engine::Execute(config);

  ASSERT_TRUE(report.completed) << GetParam() << ": " << report.error;
  EXPECT_EQ(report.solution.cover, expected.solution.cover) << GetParam();
  EXPECT_EQ(report.solution.certificate, expected.solution.certificate)
      << GetParam();
  EXPECT_EQ(report.edges_delivered, expected.edges_delivered) << GetParam();
  EXPECT_EQ(report.transient_retries, expected.transient_retries)
      << GetParam();
  EXPECT_EQ(report.corrupt_records_skipped,
            expected.corrupt_records_skipped)
      << GetParam();
  EXPECT_EQ(report.faults_survived, expected.faults_survived) << GetParam();
  EXPECT_EQ(report.degraded, expected.degraded) << GetParam();
  EXPECT_EQ(report.current_words, manual->Meter().CurrentWords())
      << GetParam();
}

// The batcher knob: any batch size must leave covers, certificates and
// state bit-identical (the ProcessEdgeBatch contract, enforced at the
// engine seam).
TEST_P(EngineSweep, BatchSizeIsObservationallyInvisible) {
  Fixture fixture = MakeFixture(101, StreamOrder::kRandom);
  engine::RunConfig config;
  config.algorithm = GetParam();
  config.options.seed = 21;
  config.source = engine::SourceSpec::InMemory(fixture.stream);
  engine::RunReport expected = engine::Execute(config);
  ASSERT_TRUE(expected.completed) << expected.error;

  for (size_t batch_edges : {size_t{1}, size_t{7}, size_t{1000}}) {
    engine::RunConfig odd = config;
    odd.batch_edges = batch_edges;
    engine::RunReport report = engine::Execute(odd);
    const std::string context =
        GetParam() + " batch=" + std::to_string(batch_edges);
    ASSERT_TRUE(report.completed) << context << ": " << report.error;
    EXPECT_EQ(report.solution.cover, expected.solution.cover) << context;
    EXPECT_EQ(report.solution.certificate, expected.solution.certificate)
        << context;
    EXPECT_EQ(report.current_words, expected.current_words) << context;
  }
}

std::string TestName(const testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name)
    if (c == '-') c = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, EngineSweep,
                         testing::ValuesIn(RegisteredAlgorithmNames()),
                         TestName);

// Multi-chunk on-disk kill-and-resume through the engine: checkpoints
// land mid-file (across v3 chunk boundaries), the resume seeks into the
// compressed file, and the finished run matches an uninterrupted
// file-fast-path run.
TEST(EngineTest, MultiChunkFileKillAndResume) {
  Rng rng(7);
  UniformRandomParams p;
  p.num_elements = 200;
  p.num_sets = 3000;
  SetCoverInstance instance = GenerateUniformRandom(p, rng);
  EdgeStream stream = RandomOrderStream(instance, rng);
  ASSERT_GT(stream.size(), 2 * kIngestBatchEdges);

  const std::string file_path = TempPath("multichunk.bin");
  const std::string ckpt_path = TempPath("multichunk.sckp");
  std::string error;
  ASSERT_TRUE(WriteStreamFile(stream, file_path, StreamFormat::kV3, &error))
      << error;

  StreamReadOptions read_options;
  read_options.prefetch = true;
  engine::RunConfig base;
  base.algorithm = "kk";
  base.options.seed = 5;
  base.source = engine::SourceSpec::File(file_path, read_options);
  engine::RunReport expected = engine::Execute(base);
  ASSERT_TRUE(expected.completed) << expected.error;

  engine::RunConfig kill = base;
  kill.checkpoint.path = ckpt_path;
  kill.checkpoint.every = 1000;
  kill.stop_after = 5500;
  engine::RunReport killed = engine::Execute(kill);
  ASSERT_FALSE(killed.completed);
  ASSERT_EQ(killed.checkpoints_written, 5u);

  engine::RunConfig resume = base;
  resume.checkpoint.path = ckpt_path;
  resume.checkpoint.resume = true;
  engine::RunReport resumed = engine::Execute(resume);
  ASSERT_TRUE(resumed.completed) << resumed.error;
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.resumed_at, 5000u);
  EXPECT_EQ(resumed.edges_delivered, stream.size());
  EXPECT_EQ(resumed.solution.cover, expected.solution.cover);
  EXPECT_EQ(resumed.solution.certificate, expected.solution.certificate);
  EXPECT_EQ(resumed.current_words, expected.current_words);

  std::remove(file_path.c_str());
  std::remove(ckpt_path.c_str());
}

TEST(EngineTest, UnknownAlgorithmFailsWithSuggestion) {
  EdgeStream stream;
  engine::RunConfig config;
  config.algorithm = "kkk";
  config.source = engine::SourceSpec::InMemory(stream);
  engine::RunReport report = engine::Execute(config);
  EXPECT_FALSE(report.completed);
  EXPECT_NE(report.error.find("did you mean 'kk'"), std::string::npos)
      << report.error;
  EXPECT_NE(report.error.find("registered algorithms:"), std::string::npos)
      << report.error;
}

TEST(EngineTest, ConfigWithoutExactlyOneSourceFails) {
  engine::RunConfig none;
  none.algorithm = "kk";
  EXPECT_FALSE(engine::Execute(none).error.empty());

  EdgeStream stream;
  engine::RunConfig both;
  both.algorithm = "kk";
  both.source = engine::SourceSpec::InMemory(stream);
  both.source.path = "also-a-file";
  EXPECT_FALSE(engine::Execute(both).error.empty());
}

TEST(EngineTest, ValidationStageReportsVerdict) {
  Fixture fixture = MakeFixture(101, StreamOrder::kRandom);
  engine::RunConfig config;
  config.algorithm = "kk";
  config.options.seed = 21;
  config.source = engine::SourceSpec::InMemory(fixture.stream);
  config.validate = &fixture.instance;
  engine::RunReport report = engine::Execute(config);
  ASSERT_TRUE(report.completed) << report.error;
  EXPECT_TRUE(report.validated);
  EXPECT_TRUE(report.validation.ok) << report.validation.error;
  EXPECT_GE(report.stages.total_seconds, 0.0);

  engine::RunConfig unvalidated = config;
  unvalidated.validate = nullptr;
  EXPECT_FALSE(engine::Execute(unvalidated).validated);
}

}  // namespace
}  // namespace setcover
