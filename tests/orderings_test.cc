#include "stream/orderings.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "instance/generators.h"

namespace setcover {
namespace {

SetCoverInstance TestInstance() {
  Rng rng(42);
  UniformRandomParams params;
  params.num_elements = 30;
  params.num_sets = 15;
  params.min_set_size = 1;
  params.max_set_size = 8;
  return GenerateUniformRandom(params, rng);
}

std::multiset<std::pair<SetId, ElementId>> AsMultiset(
    const EdgeStream& stream) {
  std::multiset<std::pair<SetId, ElementId>> result;
  for (const Edge& e : stream.edges) result.insert({e.set, e.element});
  return result;
}

class OrderingsPermutationTest
    : public testing::TestWithParam<StreamOrder> {};

TEST_P(OrderingsPermutationTest, EveryOrderIsAPermutationOfTheEdges) {
  auto inst = TestInstance();
  Rng rng(7);
  auto canonical = MakeStream(inst, MaterializeEdges(inst));
  auto ordered = OrderedStream(inst, GetParam(), rng);
  EXPECT_EQ(ordered.size(), canonical.size());
  EXPECT_EQ(AsMultiset(ordered), AsMultiset(canonical));
  EXPECT_EQ(ordered.meta.num_sets, inst.NumSets());
  EXPECT_EQ(ordered.meta.num_elements, inst.NumElements());
  EXPECT_EQ(ordered.meta.stream_length, inst.NumEdges());
}

INSTANTIATE_TEST_SUITE_P(
    AllOrders, OrderingsPermutationTest,
    testing::Values(StreamOrder::kRandom, StreamOrder::kSetMajor,
                    StreamOrder::kElementMajor,
                    StreamOrder::kRoundRobinSets,
                    StreamOrder::kLargeSetsLast),
    [](const testing::TestParamInfo<StreamOrder>& info) {
      std::string name = StreamOrderName(info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(OrderingsTest, SetMajorIsContiguous) {
  auto inst = TestInstance();
  Rng rng(1);
  auto stream = OrderedStream(inst, StreamOrder::kSetMajor, rng);
  std::set<SetId> closed;
  SetId current = kNoSet;
  for (const Edge& e : stream.edges) {
    if (e.set != current) {
      EXPECT_EQ(closed.count(e.set), 0u) << "set reappeared after closing";
      if (current != kNoSet) closed.insert(current);
      current = e.set;
    }
  }
}

TEST(OrderingsTest, ElementMajorIsSortedByElement) {
  auto inst = TestInstance();
  Rng rng(1);
  auto stream = OrderedStream(inst, StreamOrder::kElementMajor, rng);
  for (size_t i = 1; i < stream.edges.size(); ++i) {
    EXPECT_LE(stream.edges[i - 1].element, stream.edges[i].element);
  }
}

TEST(OrderingsTest, LargeSetsLastIsSortedBySetSize) {
  auto inst = TestInstance();
  Rng rng(1);
  auto stream = OrderedStream(inst, StreamOrder::kLargeSetsLast, rng);
  size_t prev_size = 0;
  SetId current = kNoSet;
  for (const Edge& e : stream.edges) {
    if (e.set != current) {
      current = e.set;
      size_t size = inst.Set(current).size();
      EXPECT_GE(size, prev_size);
      prev_size = size;
    }
  }
}

TEST(OrderingsTest, RandomOrderDiffersAcrossRng) {
  auto inst = TestInstance();
  Rng rng1(1), rng2(2);
  auto s1 = RandomOrderStream(inst, rng1);
  auto s2 = RandomOrderStream(inst, rng2);
  ASSERT_EQ(s1.size(), s2.size());
  bool differ = false;
  for (size_t i = 0; i < s1.size(); ++i) {
    if (!(s1.edges[i] == s2.edges[i])) {
      differ = true;
      break;
    }
  }
  EXPECT_TRUE(differ);
}

TEST(OrderingsTest, RandomOrderDeterministicGivenSeed) {
  auto inst = TestInstance();
  Rng rng1(5), rng2(5);
  auto s1 = RandomOrderStream(inst, rng1);
  auto s2 = RandomOrderStream(inst, rng2);
  ASSERT_EQ(s1.size(), s2.size());
  for (size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1.edges[i], s2.edges[i]);
  }
}

// ---- Exact-sequence equivalence: the counting-sort / CSR-walk
// implementations must emit the same edge *sequence* (not just
// multiset) as the straightforward sort-based references they replaced.

std::vector<SetCoverInstance> EquivalenceInstances() {
  std::vector<SetCoverInstance> instances;
  instances.push_back(TestInstance());
  Rng rng(1234);
  PlantedCoverParams planted;
  planted.num_elements = 90;
  planted.num_sets = 40;
  planted.planted_cover_size = 5;
  instances.push_back(GeneratePlantedCover(planted, rng));
  // Ragged shapes: empty sets at both ends, duplicate contents.
  instances.push_back(SetCoverInstance::FromSets(
      6, {{}, {0, 1, 2, 3, 4, 5}, {2}, {}, {2}, {5, 0}, {}}));
  return instances;
}

void ExpectSameSequence(const EdgeStream& got,
                        const std::vector<Edge>& want,
                        const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got.edges[i], want[i]) << label << " at " << i;
  }
}

TEST(OrderingsEquivalenceTest, ElementMajorMatchesStableSort) {
  for (const auto& inst : EquivalenceInstances()) {
    std::vector<Edge> want = MaterializeEdges(inst);
    std::stable_sort(want.begin(), want.end(),
                     [](const Edge& a, const Edge& b) {
                       return a.element < b.element;
                     });
    Rng rng(3);
    ExpectSameSequence(OrderedStream(inst, StreamOrder::kElementMajor, rng),
                       want, "element-major");
  }
}

TEST(OrderingsEquivalenceTest, RoundRobinMatchesQueueReference) {
  for (const auto& inst : EquivalenceInstances()) {
    // Reference: k-th pass emits the k-th element of every set that
    // still has one, sets in ascending id order.
    std::vector<Edge> want;
    for (size_t k = 0; true; ++k) {
      size_t emitted = 0;
      for (SetId s = 0; s < inst.NumSets(); ++s) {
        auto set = inst.Set(s);
        if (k < set.size()) {
          want.push_back({s, set[k]});
          ++emitted;
        }
      }
      if (emitted == 0) break;
    }
    Rng rng(3);
    ExpectSameSequence(OrderedStream(inst, StreamOrder::kRoundRobinSets, rng),
                       want, "round-robin");
  }
}

TEST(OrderingsEquivalenceTest, LargeSetsLastMatchesStableSortBySize) {
  for (const auto& inst : EquivalenceInstances()) {
    // Reference: sets stably sorted by size (ties keep ascending id),
    // each set's edges contiguous in element order.
    std::vector<SetId> order(inst.NumSets());
    for (SetId s = 0; s < inst.NumSets(); ++s) order[s] = s;
    std::stable_sort(order.begin(), order.end(), [&](SetId a, SetId b) {
      return inst.Set(a).size() < inst.Set(b).size();
    });
    std::vector<Edge> want;
    for (SetId s : order) {
      for (ElementId u : inst.Set(s)) want.push_back({s, u});
    }
    Rng rng(3);
    ExpectSameSequence(OrderedStream(inst, StreamOrder::kLargeSetsLast, rng),
                       want, "large-sets-last");
  }
}

TEST(OrderingsTest, NamesAreDistinct) {
  std::set<std::string> names = {
      StreamOrderName(StreamOrder::kRandom),
      StreamOrderName(StreamOrder::kSetMajor),
      StreamOrderName(StreamOrder::kElementMajor),
      StreamOrderName(StreamOrder::kRoundRobinSets),
      StreamOrderName(StreamOrder::kLargeSetsLast)};
  EXPECT_EQ(names.size(), 5u);
}

}  // namespace
}  // namespace setcover
