#include "stream/orderings.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "instance/generators.h"

namespace setcover {
namespace {

SetCoverInstance TestInstance() {
  Rng rng(42);
  UniformRandomParams params;
  params.num_elements = 30;
  params.num_sets = 15;
  params.min_set_size = 1;
  params.max_set_size = 8;
  return GenerateUniformRandom(params, rng);
}

std::multiset<std::pair<SetId, ElementId>> AsMultiset(
    const EdgeStream& stream) {
  std::multiset<std::pair<SetId, ElementId>> result;
  for (const Edge& e : stream.edges) result.insert({e.set, e.element});
  return result;
}

class OrderingsPermutationTest
    : public testing::TestWithParam<StreamOrder> {};

TEST_P(OrderingsPermutationTest, EveryOrderIsAPermutationOfTheEdges) {
  auto inst = TestInstance();
  Rng rng(7);
  auto canonical = MakeStream(inst, MaterializeEdges(inst));
  auto ordered = OrderedStream(inst, GetParam(), rng);
  EXPECT_EQ(ordered.size(), canonical.size());
  EXPECT_EQ(AsMultiset(ordered), AsMultiset(canonical));
  EXPECT_EQ(ordered.meta.num_sets, inst.NumSets());
  EXPECT_EQ(ordered.meta.num_elements, inst.NumElements());
  EXPECT_EQ(ordered.meta.stream_length, inst.NumEdges());
}

INSTANTIATE_TEST_SUITE_P(
    AllOrders, OrderingsPermutationTest,
    testing::Values(StreamOrder::kRandom, StreamOrder::kSetMajor,
                    StreamOrder::kElementMajor,
                    StreamOrder::kRoundRobinSets,
                    StreamOrder::kLargeSetsLast),
    [](const testing::TestParamInfo<StreamOrder>& info) {
      std::string name = StreamOrderName(info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(OrderingsTest, SetMajorIsContiguous) {
  auto inst = TestInstance();
  Rng rng(1);
  auto stream = OrderedStream(inst, StreamOrder::kSetMajor, rng);
  std::set<SetId> closed;
  SetId current = kNoSet;
  for (const Edge& e : stream.edges) {
    if (e.set != current) {
      EXPECT_EQ(closed.count(e.set), 0u) << "set reappeared after closing";
      if (current != kNoSet) closed.insert(current);
      current = e.set;
    }
  }
}

TEST(OrderingsTest, ElementMajorIsSortedByElement) {
  auto inst = TestInstance();
  Rng rng(1);
  auto stream = OrderedStream(inst, StreamOrder::kElementMajor, rng);
  for (size_t i = 1; i < stream.edges.size(); ++i) {
    EXPECT_LE(stream.edges[i - 1].element, stream.edges[i].element);
  }
}

TEST(OrderingsTest, LargeSetsLastIsSortedBySetSize) {
  auto inst = TestInstance();
  Rng rng(1);
  auto stream = OrderedStream(inst, StreamOrder::kLargeSetsLast, rng);
  size_t prev_size = 0;
  SetId current = kNoSet;
  for (const Edge& e : stream.edges) {
    if (e.set != current) {
      current = e.set;
      size_t size = inst.Set(current).size();
      EXPECT_GE(size, prev_size);
      prev_size = size;
    }
  }
}

TEST(OrderingsTest, RandomOrderDiffersAcrossRng) {
  auto inst = TestInstance();
  Rng rng1(1), rng2(2);
  auto s1 = RandomOrderStream(inst, rng1);
  auto s2 = RandomOrderStream(inst, rng2);
  ASSERT_EQ(s1.size(), s2.size());
  bool differ = false;
  for (size_t i = 0; i < s1.size(); ++i) {
    if (!(s1.edges[i] == s2.edges[i])) {
      differ = true;
      break;
    }
  }
  EXPECT_TRUE(differ);
}

TEST(OrderingsTest, RandomOrderDeterministicGivenSeed) {
  auto inst = TestInstance();
  Rng rng1(5), rng2(5);
  auto s1 = RandomOrderStream(inst, rng1);
  auto s2 = RandomOrderStream(inst, rng2);
  ASSERT_EQ(s1.size(), s2.size());
  for (size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1.edges[i], s2.edges[i]);
  }
}

TEST(OrderingsTest, NamesAreDistinct) {
  std::set<std::string> names = {
      StreamOrderName(StreamOrder::kRandom),
      StreamOrderName(StreamOrder::kSetMajor),
      StreamOrderName(StreamOrder::kElementMajor),
      StreamOrderName(StreamOrder::kRoundRobinSets),
      StreamOrderName(StreamOrder::kLargeSetsLast)};
  EXPECT_EQ(names.size(), 5u);
}

}  // namespace
}  // namespace setcover
