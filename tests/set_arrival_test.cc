#include "core/set_arrival.h"

#include <cmath>

#include <gtest/gtest.h>

#include "instance/generators.h"
#include "tests/test_util.h"

namespace setcover {
namespace {

TEST(SetArrivalTest, ValidOnSetMajorOrder) {
  Rng rng(1);
  UniformRandomParams params;
  params.num_elements = 100;
  params.num_sets = 50;
  params.max_set_size = 12;
  auto inst = GenerateUniformRandom(params, rng);
  SetArrivalThreshold algorithm;
  RunAndValidate(algorithm, inst, StreamOrder::kSetMajor, 2);
}

TEST(SetArrivalTest, StillValidOnNonContiguousOrders) {
  Rng rng(2);
  UniformRandomParams params;
  params.num_elements = 50;
  params.num_sets = 40;
  auto inst = GenerateUniformRandom(params, rng);
  for (StreamOrder order :
       {StreamOrder::kRandom, StreamOrder::kElementMajor,
        StreamOrder::kRoundRobinSets}) {
    SetArrivalThreshold algorithm;
    RunAndValidate(algorithm, inst, order, 3);
  }
}

TEST(SetArrivalTest, TwoSqrtNApproxOnSetMajor) {
  Rng rng(3);
  PlantedCoverParams params;
  params.num_elements = 256;
  params.num_sets = 512;
  params.planted_cover_size = 4;
  params.decoy_max_size = 4;
  auto inst = GeneratePlantedCover(params, rng);
  SetArrivalThreshold algorithm;
  auto sol = RunAndValidate(algorithm, inst, StreamOrder::kSetMajor, 4);
  double bound = 2.0 * std::sqrt(256.0) + 1.0;
  EXPECT_LE(double(sol.cover.size()),
            bound * double(inst.PlantedCover().size()));
}

TEST(SetArrivalTest, TakesTheThresholdClearingSet) {
  // Set 0 covers everything: under set-major order it clears any
  // threshold <= n and should be the entire solution.
  auto inst = SetCoverInstance::FromSets(
      9, {{0, 1, 2, 3, 4, 5, 6, 7, 8}, {0}, {1}});
  SetArrivalThreshold algorithm;  // threshold = √9 = 3
  auto sol = RunAndValidate(algorithm, inst, StreamOrder::kSetMajor, 5);
  EXPECT_EQ(sol.cover.size(), 1u);
  EXPECT_EQ(sol.cover[0], 0u);
}

TEST(SetArrivalTest, BelowThresholdSetsArePatchedInstead) {
  // All sets are below the threshold: the cover is pure patching.
  auto inst = GeneratePartition(16, 8);  // blocks of size 2, threshold 4
  SetArrivalThreshold algorithm;
  auto sol = RunAndValidate(algorithm, inst, StreamOrder::kSetMajor, 6);
  EXPECT_EQ(sol.cover.size(), 8u);
}

TEST(SetArrivalTest, CustomThreshold) {
  auto inst = GeneratePartition(16, 8);
  SetArrivalThreshold algorithm(/*threshold=*/2);
  auto sol = RunAndValidate(algorithm, inst, StreamOrder::kSetMajor, 7);
  // Every block has exactly 2 elements and now clears the threshold.
  EXPECT_EQ(sol.cover.size(), 8u);
}

TEST(SetArrivalTest, SpaceIsLinearInNNotM) {
  Rng rng(4);
  UniformRandomParams params;
  params.num_elements = 128;
  params.num_sets = 8192;
  params.max_set_size = 4;
  auto inst = GenerateUniformRandom(params, rng);
  SetArrivalThreshold algorithm;
  RunAndValidate(algorithm, inst, StreamOrder::kSetMajor, 8);
  EXPECT_LT(algorithm.Meter().PeakWords(), 10u * 128u + 1000u);
}

}  // namespace
}  // namespace setcover
