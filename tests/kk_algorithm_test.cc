#include "core/kk_algorithm.h"

#include <cmath>

#include <gtest/gtest.h>

#include "instance/generators.h"
#include "offline/greedy.h"
#include "tests/test_util.h"

namespace setcover {
namespace {

SetCoverInstance PlantedInstance(uint32_t n, uint32_t m, uint32_t opt,
                                 uint64_t seed) {
  Rng rng(seed);
  PlantedCoverParams params;
  params.num_elements = n;
  params.num_sets = m;
  params.planted_cover_size = opt;
  params.decoy_min_size = 1;
  params.decoy_max_size = 4;
  return GeneratePlantedCover(params, rng);
}

TEST(KkAlgorithmTest, ValidCoverOnEveryOrder) {
  auto inst = PlantedInstance(100, 200, 4, 1);
  for (StreamOrder order :
       {StreamOrder::kRandom, StreamOrder::kSetMajor,
        StreamOrder::kElementMajor, StreamOrder::kRoundRobinSets,
        StreamOrder::kLargeSetsLast}) {
    KkAlgorithm algorithm(17);
    RunAndValidate(algorithm, inst, order, 3);
  }
}

TEST(KkAlgorithmTest, DeterministicGivenSeed) {
  auto inst = PlantedInstance(80, 120, 3, 2);
  KkAlgorithm a(99), b(99);
  auto sa = RunAndValidate(a, inst, StreamOrder::kRandom, 5);
  auto sb = RunAndValidate(b, inst, StreamOrder::kRandom, 5);
  EXPECT_EQ(sa.cover, sb.cover);
  EXPECT_EQ(sa.certificate, sb.certificate);
}

TEST(KkAlgorithmTest, SpaceIsThetaM) {
  // The degree array dominates: peak words ≈ m + 2n (+ solution).
  auto inst = PlantedInstance(64, 4096, 4, 3);
  KkAlgorithm algorithm(1);
  RunAndValidate(algorithm, inst, StreamOrder::kRandom, 1);
  size_t peak = algorithm.Meter().PeakWords();
  EXPECT_GE(peak, 4096u);
  EXPECT_LE(peak, 4096u + 2 * 64u + 2000u);
}

TEST(KkAlgorithmTest, ApproxWithinSqrtNBoundOnAdversarialOrders) {
  // Theorem 1: Õ(√n)-approximation. We allow the poly-log slack as a
  // constant factor at this scale.
  const uint32_t n = 256;
  auto inst = PlantedInstance(n, 2048, 4, 4);
  const double bound =
      8.0 * std::sqrt(double(n)) * std::log2(double(inst.NumSets()));
  for (StreamOrder order : {StreamOrder::kElementMajor,
                            StreamOrder::kRoundRobinSets,
                            StreamOrder::kRandom}) {
    KkAlgorithm algorithm(7);
    auto sol = RunAndValidate(algorithm, inst, order, 11);
    EXPECT_LE(sol.cover.size(),
              size_t(bound * double(inst.PlantedCover().size())))
        << StreamOrderName(order);
  }
}

TEST(KkAlgorithmTest, LevelHistogramDecaysGeometrically) {
  // §1.2: E|S_i| <= ½·E|S_{i-1}|. Averaged over trials, each level
  // should hold well under the previous one.
  const int trials = 10;
  std::vector<double> level_sums(3, 0.0);
  for (int t = 0; t < trials; ++t) {
    auto inst = PlantedInstance(256, 1024, 2, 100 + t);
    KkAlgorithm algorithm(200 + t);
    RunAndValidate(algorithm, inst, StreamOrder::kRandom, 300 + t);
    auto hist = algorithm.LevelHistogram();
    for (size_t i = 0; i < level_sums.size() && i < hist.size(); ++i) {
      level_sums[i] += double(hist[i]);
    }
  }
  ASSERT_GT(level_sums[0], 0.0);
  EXPECT_LT(level_sums[1], 0.75 * level_sums[0]);
  if (level_sums[1] > 0) EXPECT_LT(level_sums[2], 0.75 * level_sums[1]);
}

TEST(KkAlgorithmTest, SampledSolutionIsSmallOnPlantedInstances) {
  auto inst = PlantedInstance(256, 2048, 4, 5);
  KkAlgorithm algorithm(13);
  RunAndValidate(algorithm, inst, StreamOrder::kRandom, 17);
  // Sampled sets should be Õ(√n); generous constant.
  EXPECT_LE(algorithm.SampledCoverSize(),
            size_t(30.0 * std::sqrt(256.0) *
                   std::log2(double(inst.NumSets()))));
}

TEST(KkAlgorithmTest, TinyInstances) {
  // n = 1.
  auto one = SetCoverInstance::FromSets(1, {{0}});
  KkAlgorithm a(1);
  auto sol = RunAndValidate(a, one, StreamOrder::kSetMajor, 1);
  EXPECT_EQ(sol.cover.size(), 1u);
  // m = 1 covering everything.
  auto single = SetCoverInstance::FromSets(5, {{0, 1, 2, 3, 4}});
  KkAlgorithm b(2);
  auto sol2 = RunAndValidate(b, single, StreamOrder::kSetMajor, 1);
  EXPECT_EQ(sol2.cover.size(), 1u);
}

TEST(KkAlgorithmTest, DuplicateEdgesAreHarmless) {
  auto inst = SetCoverInstance::FromSets(4, {{0, 1}, {2, 3}});
  KkAlgorithm algorithm(3);
  EdgeStream stream;
  stream.meta = {2, 4, 8};
  stream.edges = {{0, 0}, {0, 0}, {0, 1}, {1, 2},
                  {1, 2}, {1, 3}, {0, 1}, {1, 3}};
  auto sol = RunStream(algorithm, stream);
  auto check = ValidateSolution(inst, sol);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(KkAlgorithmTest, ReusableAcrossBeginCalls) {
  auto inst = PlantedInstance(60, 100, 3, 6);
  KkAlgorithm algorithm(5);
  auto s1 = RunAndValidate(algorithm, inst, StreamOrder::kRandom, 8);
  auto s2 = RunAndValidate(algorithm, inst, StreamOrder::kRandom, 8);
  EXPECT_EQ(s1.cover, s2.cover);  // Begin() must fully reset
}

}  // namespace
}  // namespace setcover
