#include "core/multi_pass.h"

#include <cmath>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "instance/generators.h"
#include "instance/validator.h"
#include "offline/exact.h"
#include "stream/orderings.h"
#include "util/rng.h"

namespace setcover {
namespace {

SetCoverInstance PlantedInstance(uint32_t n, uint32_t m, uint32_t opt,
                                 uint64_t seed) {
  Rng rng(seed);
  PlantedCoverParams params;
  params.num_elements = n;
  params.num_sets = m;
  params.planted_cover_size = opt;
  params.decoy_max_size = 4;
  return GeneratePlantedCover(params, rng);
}

CoverSolution RunOn(ProgressiveThresholdMultiPass& algorithm,
                    const SetCoverInstance& inst, StreamOrder order,
                    uint64_t seed, uint32_t* passes = nullptr) {
  Rng rng(seed);
  auto stream = OrderedStream(inst, order, rng);
  auto solution = RunMultiPass(algorithm, stream, 64, passes);
  auto check = ValidateSolution(inst, solution);
  EXPECT_TRUE(check.ok) << check.error;
  return solution;
}

TEST(MultiPassTest, FullScheduleCoversOnAllOrders) {
  auto inst = PlantedInstance(100, 300, 4, 1);
  for (StreamOrder order :
       {StreamOrder::kRandom, StreamOrder::kSetMajor,
        StreamOrder::kElementMajor, StreamOrder::kRoundRobinSets,
        StreamOrder::kLargeSetsLast}) {
    ProgressiveThresholdMultiPass algorithm;
    RunOn(algorithm, inst, order, 2);
  }
}

TEST(MultiPassTest, UsesLogNPassesByDefault) {
  auto inst = PlantedInstance(256, 512, 4, 2);
  ProgressiveThresholdMultiPass algorithm;
  uint32_t passes = 0;
  RunOn(algorithm, inst, StreamOrder::kRandom, 3, &passes);
  EXPECT_EQ(passes, 9u);  // ceil(log2 256) + 1
  EXPECT_EQ(algorithm.Thresholds().back(), 1u);
}

TEST(MultiPassTest, ThresholdScheduleIsDecreasing) {
  auto inst = PlantedInstance(1024, 256, 4, 3);
  MultiPassParams params;
  params.passes = 5;
  ProgressiveThresholdMultiPass algorithm(params);
  Rng rng(4);
  auto stream = RandomOrderStream(inst, rng);
  algorithm.Begin(stream.meta);
  const auto& thresholds = algorithm.Thresholds();
  ASSERT_EQ(thresholds.size(), 5u);
  for (size_t i = 1; i < thresholds.size(); ++i) {
    EXPECT_LE(thresholds[i], thresholds[i - 1]);
  }
  EXPECT_EQ(thresholds.back(), 1u);
}

TEST(MultiPassTest, NearGreedyQualityWithFullSchedule) {
  // O(log n) approx with the full schedule: on small instances it must
  // sit within a small factor of exact.
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    UniformRandomParams p;
    p.num_elements = 14;
    p.num_sets = 16;
    p.max_set_size = 6;
    auto inst = GenerateUniformRandom(p, rng);
    auto exact = ExactCover(inst);
    ASSERT_TRUE(exact.has_value());
    ProgressiveThresholdMultiPass algorithm;
    auto sol = RunOn(algorithm, inst, StreamOrder::kRandom, 10 + trial);
    EXPECT_LE(sol.cover.size(), 4 * exact->cover.size() + 1);
  }
}

TEST(MultiPassTest, MorePassesNeverMuchWorse) {
  // The p-pass trade-off (Chakrabarti–Wirth shape): quality improves
  // (or stays flat) as p grows.
  auto inst = PlantedInstance(512, 2048, 8, 6);
  double cover2 = 0, cover10 = 0;
  for (int t = 0; t < 3; ++t) {
    MultiPassParams p2;
    p2.passes = 2;
    ProgressiveThresholdMultiPass two(p2);
    cover2 += double(RunOn(two, inst, StreamOrder::kRandom, 20 + t)
                         .cover.size());
    MultiPassParams p10;
    p10.passes = 10;
    ProgressiveThresholdMultiPass ten(p10);
    cover10 += double(RunOn(ten, inst, StreamOrder::kRandom, 20 + t)
                          .cover.size());
  }
  EXPECT_LE(cover10, cover2 * 1.5 + 3);
}

TEST(MultiPassTest, SinglePassDegeneratesToThresholdOne) {
  // p = 1 runs one pass at T = 1: every first-touch of an uncovered
  // element adds its set — still a valid cover.
  auto inst = PlantedInstance(64, 128, 4, 7);
  MultiPassParams params;
  params.passes = 1;
  ProgressiveThresholdMultiPass algorithm(params);
  uint32_t passes = 0;
  auto sol = RunOn(algorithm, inst, StreamOrder::kRandom, 8, &passes);
  EXPECT_EQ(passes, 1u);
  EXPECT_GE(sol.cover.size(), 4u);
}

TEST(MultiPassTest, PerPassAdditionsRecorded) {
  auto inst = PlantedInstance(128, 512, 4, 9);
  ProgressiveThresholdMultiPass algorithm;
  uint32_t passes = 0;
  RunOn(algorithm, inst, StreamOrder::kRandom, 10, &passes);
  EXPECT_EQ(algorithm.SetsAddedPerPass().size(), passes);
}

TEST(MultiPassTest, SpaceIsMPlusN) {
  auto inst = PlantedInstance(128, 4096, 4, 11);
  ProgressiveThresholdMultiPass algorithm;
  RunOn(algorithm, inst, StreamOrder::kRandom, 12);
  size_t peak = algorithm.Meter().PeakWords();
  EXPECT_GE(peak, 4096u);
  EXPECT_LE(peak, 4096u + 2 * 128u + 2048u);
}

// The stream adapter + a p-pass engine schedule is the same execution
// as RunMultiPass over the raw stream: same cover, same certificate,
// same per-pass additions.
TEST(MultiPassTest, StreamAdapterUnderPassScheduleMatchesRunMultiPass) {
  auto inst = PlantedInstance(256, 1024, 6, 15);
  Rng rng(16);
  auto stream = RandomOrderStream(inst, rng);
  for (uint32_t p : {1u, 2u, 4u}) {
    MultiPassParams params;
    params.passes = p;
    ProgressiveThresholdMultiPass reference(params);
    uint32_t passes_used = 0;
    CoverSolution expected =
        RunMultiPass(reference, stream, 64, &passes_used);
    ASSERT_EQ(passes_used, p);

    ProgressiveThresholdMultiPass inner(params);
    MultiPassStreamAdapter adapter(inner);
    engine::RunConfig config;
    config.algorithm_instance = &adapter;
    config.source = engine::SourceSpec::InMemory(stream);
    config.source.schedule.passes = p;
    engine::RunReport report = engine::Execute(config);
    ASSERT_TRUE(report.completed) << report.error;
    EXPECT_EQ(report.solution.cover, expected.cover);
    EXPECT_EQ(report.solution.certificate, expected.certificate);
    EXPECT_EQ(adapter.PassesCompleted(), p);
    EXPECT_EQ(inner.SetsAddedPerPass(), reference.SetsAddedPerPass());

    auto check = ValidateSolution(inst, report.solution);
    EXPECT_TRUE(check.ok) << check.error;
  }
}

// A schedule with fewer passes than the algorithm wants still finalizes
// to a feasible cover: the adapter closes the open pass and the safety
// patching covers the rest.
TEST(MultiPassTest, StreamAdapterShortScheduleStillValid) {
  auto inst = PlantedInstance(256, 512, 4, 17);
  Rng rng(18);
  auto stream = RandomOrderStream(inst, rng);
  ProgressiveThresholdMultiPass inner;  // wants ceil(log2 256)+1 passes
  MultiPassStreamAdapter adapter(inner);
  engine::RunConfig config;
  config.algorithm_instance = &adapter;
  config.source = engine::SourceSpec::InMemory(stream);
  config.source.schedule.passes = 2;
  engine::RunReport report = engine::Execute(config);
  ASSERT_TRUE(report.completed) << report.error;
  EXPECT_EQ(adapter.PassesCompleted(), 2u);
  auto check = ValidateSolution(inst, report.solution);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(MultiPassTest, EarlyCutoffStillValidViaPatching) {
  // Force RunMultiPass to cut the schedule short: the safety patching
  // must still produce a valid cover.
  auto inst = PlantedInstance(256, 512, 4, 13);
  ProgressiveThresholdMultiPass algorithm;
  Rng rng(14);
  auto stream = RandomOrderStream(inst, rng);
  auto solution = RunMultiPass(algorithm, stream, /*max_passes=*/2);
  auto check = ValidateSolution(inst, solution);
  EXPECT_TRUE(check.ok) << check.error;
}

}  // namespace
}  // namespace setcover
