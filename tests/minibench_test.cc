// Pins the compatibility contract of the vendored minibench harness
// (bench/minibench/): Google Benchmark's name mangling, the JSON
// report shape the tooling consumes (scripts/check.sh's perf gate
// reads "label" and "items_per_second"; scripts/bench_baseline.sh
// stamps and verifies the "context" block), and the time-basis rule
// for items/s under UseRealTime/UseManualTime.

#include <benchmark/benchmark.h>
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

void BM_MiniPlain(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(state.range(0));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  state.SetLabel("mini/plain");
  state.counters["answer"] = 42.0;
}
BENCHMARK(BM_MiniPlain)->Arg(3)->Unit(benchmark::kMillisecond)->MinTime(0.5);

void BM_MiniManual(benchmark::State& state) {
  for (auto _ : state) {
    // Manual time dominates: 1000 items over 0.25s -> 4000 items/s on
    // the manual basis, far from anything wall/cpu time would yield.
    state.SetIterationTime(0.25);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MiniManual)->Iterations(1)->UseManualTime();

void BM_MiniReal(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(state.iterations());
  }
}
BENCHMARK(BM_MiniReal)->Iterations(2)->UseRealTime();

class MinibenchTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    const std::string path = testing::TempDir() + "/minibench_out.json";
    std::string out_flag = "--benchmark_out=" + path;
    std::string fmt_flag = "--benchmark_format=json";
    char prog[] = "minibench_test";
    char* argv[] = {prog, out_flag.data(), fmt_flag.data()};
    int argc = 3;
    benchmark::Initialize(&argc, argv);
    ASSERT_FALSE(benchmark::ReportUnrecognizedArguments(argc, argv));
    // Swallow the stdout copy of the report; the file copy is asserted.
    testing::internal::CaptureStdout();
    const std::size_t runs = benchmark::RunSpecifiedBenchmarks();
    testing::internal::GetCapturedStdout();
    ASSERT_EQ(runs, 3u);
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    report_ = buffer.str();
    std::remove(path.c_str());
  }

  static bool Contains(const std::string& needle) {
    return report_.find(needle) != std::string::npos;
  }

  static std::string report_;
};

std::string MinibenchTest::report_;

TEST_F(MinibenchTest, ManglesNamesLikeGoogleBenchmark) {
  EXPECT_TRUE(Contains("\"name\": \"BM_MiniPlain/3/min_time:0.500\""))
      << report_;
  EXPECT_TRUE(Contains("\"name\": \"BM_MiniManual/iterations:1/manual_time\""))
      << report_;
  EXPECT_TRUE(Contains("\"name\": \"BM_MiniReal/iterations:2/real_time\""))
      << report_;
}

TEST_F(MinibenchTest, EmitsTheReportShapeTheToolingReads) {
  EXPECT_TRUE(Contains("\"context\": {")) << report_;
#ifdef NDEBUG
  EXPECT_TRUE(Contains("\"library_build_type\": \"release\"")) << report_;
#else
  EXPECT_TRUE(Contains("\"library_build_type\": \"debug\"")) << report_;
#endif
  EXPECT_TRUE(Contains("\"benchmarks\": [")) << report_;
  EXPECT_TRUE(Contains("\"run_type\": \"iteration\"")) << report_;
  EXPECT_TRUE(Contains("\"time_unit\": \"ms\"")) << report_;
  EXPECT_TRUE(Contains("\"label\": \"mini/plain\"")) << report_;
  EXPECT_TRUE(Contains("\"answer\": 42")) << report_;
  EXPECT_TRUE(Contains("\"items_per_second\":")) << report_;
}

TEST_F(MinibenchTest, ManualTimeIsTheItemsPerSecondBasis) {
  // 1000 items over 0.25s of manual time = 4000 items/s exactly.
  EXPECT_TRUE(Contains("\"items_per_second\": 4000")) << report_;
}

TEST_F(MinibenchTest, FilterSelectsByMangledName) {
  // A second in-process run with a filter (flags are already parsed;
  // exercise the regex path directly through a fresh Initialize).
  const std::string path = testing::TempDir() + "/minibench_filter.json";
  std::string out_flag = "--benchmark_out=" + path;
  std::string filter_flag = "--benchmark_filter=MiniPlain|MiniReal";
  char prog[] = "minibench_test";
  char* argv[] = {prog, out_flag.data(), filter_flag.data()};
  int argc = 3;
  benchmark::Initialize(&argc, argv);
  testing::internal::CaptureStdout();
  const std::size_t runs = benchmark::RunSpecifiedBenchmarks();
  testing::internal::GetCapturedStdout();
  EXPECT_EQ(runs, 2u);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string filtered = buffer.str();
  std::remove(path.c_str());
  EXPECT_TRUE(filtered.find("BM_MiniPlain") != std::string::npos);
  EXPECT_TRUE(filtered.find("BM_MiniManual") == std::string::npos);
  EXPECT_TRUE(filtered.find("BM_MiniReal") != std::string::npos);
}

}  // namespace
