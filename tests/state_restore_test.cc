// State serialization round-trip tests: continuing a decoded instance
// must be bit-identical to continuing the original — the property that
// makes the message-passing reduction equivalent to replay.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "comm/reduction.h"
#include "core/adversarial_level.h"
#include "core/kk_algorithm.h"
#include "core/random_order.h"
#include "core/registry.h"
#include "core/trivial.h"
#include "instance/generators.h"
#include "instance/validator.h"
#include "stream/orderings.h"
#include "util/rng.h"

namespace setcover {
namespace {

class RestoreSweep : public testing::TestWithParam<std::string> {};

TEST_P(RestoreSweep, ResumedRunMatchesUninterruptedRun) {
  Rng rng(1);
  PlantedCoverParams p;
  p.num_elements = 96;
  p.num_sets = 512;
  p.planted_cover_size = 4;
  auto inst = GeneratePlantedCover(p, rng);
  auto stream = RandomOrderStream(inst, rng);

  for (double cut_fraction : {0.0, 0.33, 0.8, 1.0}) {
    size_t cut = size_t(double(stream.size()) * cut_fraction);

    // Reference: uninterrupted run, snapshotting at the cut.
    auto reference = MakeAlgorithmByName(GetParam(), {.seed = 7});
    reference->Begin(stream.meta);
    for (size_t i = 0; i < cut; ++i) {
      reference->ProcessEdge(stream.edges[i]);
    }
    StateEncoder encoder;
    reference->EncodeState(&encoder);

    // Resumed: a fresh instance reconstructed purely from the words.
    auto resumed = MakeAlgorithmByName(GetParam(), {.seed = 999});
    ASSERT_TRUE(resumed->DecodeState(stream.meta, encoder.Words()))
        << GetParam() << " cut at " << cut_fraction;

    for (size_t i = cut; i < stream.size(); ++i) {
      reference->ProcessEdge(stream.edges[i]);
      resumed->ProcessEdge(stream.edges[i]);
    }
    auto reference_solution = reference->Finalize();
    auto resumed_solution = resumed->Finalize();
    EXPECT_EQ(resumed_solution.cover, reference_solution.cover)
        << GetParam() << " cut at " << cut_fraction;
    EXPECT_EQ(resumed_solution.certificate, reference_solution.certificate)
        << GetParam() << " cut at " << cut_fraction;
  }
}

TEST_P(RestoreSweep, RejectsMalformedMessages) {
  StreamMetadata meta{64, 32, 128};
  auto algorithm = MakeAlgorithmByName(GetParam(), {.seed = 1});
  EXPECT_FALSE(algorithm->DecodeState(meta, {1, 2, 3}));
  EXPECT_FALSE(algorithm->DecodeState(meta, {}));
  // The instance must remain usable after a failed decode.
  algorithm->Begin(meta);
  algorithm->ProcessEdge({0, 0});
  auto solution = algorithm->Finalize();
  EXPECT_LE(solution.cover.size(), 64u);
}

INSTANTIATE_TEST_SUITE_P(
    Restorable, RestoreSweep,
    testing::Values("kk", "adversarial-level", "random-order",
                    "first-set-patching"),
    [](const testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(MessagePassingReductionTest, MatchesReplayReduction) {
  Rng rng(2);
  auto family = Lemma1Family::Build(400, 4, 12, rng);
  AlgorithmFactory kk = [](uint64_t seed) {
    return std::make_unique<KkAlgorithm>(seed);
  };
  for (bool intersecting : {false, true}) {
    Rng gen(intersecting ? 3u : 4u);
    auto disj = intersecting
                    ? GenerateIntersectingInstance(4, 12, 3, gen)
                    : GenerateDisjointInstance(4, 12, 3, gen);
    auto replay = RunTheorem2Reduction(family, disj, kk, 11);
    auto message = RunTheorem2ReductionMessagePassing(family, disj, kk, 11);
    ASSERT_TRUE(message.message_passing_ok);
    EXPECT_EQ(replay.min_estimate, message.min_estimate);
    EXPECT_EQ(replay.argmin_fork, message.argmin_fork);
    EXPECT_EQ(replay.disjoint_case_opt_lower_bound,
              message.disjoint_case_opt_lower_bound);
    EXPECT_EQ(message.boundary_state_words.size(), 3u);
  }
}

TEST(MessagePassingReductionTest, ReportsUnsupportedAlgorithms) {
  Rng rng(5);
  auto family = Lemma1Family::Build(100, 2, 4, rng);
  auto disj = GenerateDisjointInstance(2, 4, 2, rng);
  // Every registered algorithm decodes now, so fake one that refuses.
  class UndecodableAlgorithm : public StoreEverythingGreedy {
   public:
    bool DecodeState(const StreamMetadata&,
                     const std::vector<uint64_t>&) override {
      return false;
    }
  };
  AlgorithmFactory unsupported = [](uint64_t) {
    return std::make_unique<UndecodableAlgorithm>();
  };
  auto result =
      RunTheorem2ReductionMessagePassing(family, disj, unsupported, 1);
  EXPECT_FALSE(result.message_passing_ok);
}

TEST(MessagePassingReductionTest, MessageSizesAreLiteralEncodings) {
  Rng rng(6);
  auto family = Lemma1Family::Build(400, 4, 12, rng);
  auto disj = GenerateDisjointInstance(4, 12, 3, rng);
  AlgorithmFactory kk = [](uint64_t seed) {
    return std::make_unique<KkAlgorithm>(seed);
  };
  auto result = RunTheorem2ReductionMessagePassing(family, disj, kk, 7);
  ASSERT_TRUE(result.message_passing_ok);
  // KK state ≈ m degrees (packed 2/word) + element state: all
  // boundaries carry (m+1)/2 + ~3n/2-ish words, certainly > m/4.
  for (size_t words : result.boundary_state_words) {
    EXPECT_GT(words, size_t{family.m()} / 4);
  }
}

}  // namespace
}  // namespace setcover
