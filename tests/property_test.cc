// Property sweeps (TEST_P): every algorithm × every ordering × several
// instance families must produce valid covers with valid certificates,
// deterministically replayable, with bounded quality relative to greedy.

#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/adversarial_level.h"
#include "core/kk_algorithm.h"
#include "core/multi_run.h"
#include "core/random_order.h"
#include "core/set_arrival.h"
#include "core/trivial.h"
#include "instance/generators.h"
#include "instance/validator.h"
#include "offline/greedy.h"
#include "stream/orderings.h"
#include "util/rng.h"

namespace setcover {
namespace {

enum class AlgorithmKind {
  kKk,
  kAdversarialLevel,
  kRandomOrder,
  kFirstSetPatching,
  kStoreEverything,
  kSetArrival,
  kNGuess,
};

std::string AlgorithmKindName(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kKk:
      return "kk";
    case AlgorithmKind::kAdversarialLevel:
      return "adversarial_level";
    case AlgorithmKind::kRandomOrder:
      return "random_order";
    case AlgorithmKind::kFirstSetPatching:
      return "first_set_patching";
    case AlgorithmKind::kStoreEverything:
      return "store_everything";
    case AlgorithmKind::kSetArrival:
      return "set_arrival";
    case AlgorithmKind::kNGuess:
      return "nguess";
  }
  return "unknown";
}

std::unique_ptr<StreamingSetCoverAlgorithm> MakeAlgorithm(
    AlgorithmKind kind, uint64_t seed) {
  switch (kind) {
    case AlgorithmKind::kKk:
      return std::make_unique<KkAlgorithm>(seed);
    case AlgorithmKind::kAdversarialLevel:
      return std::make_unique<AdversarialLevelAlgorithm>(seed);
    case AlgorithmKind::kRandomOrder:
      return std::make_unique<RandomOrderAlgorithm>(seed);
    case AlgorithmKind::kFirstSetPatching:
      return std::make_unique<FirstSetPatching>();
    case AlgorithmKind::kStoreEverything:
      return std::make_unique<StoreEverythingGreedy>();
    case AlgorithmKind::kSetArrival:
      return std::make_unique<SetArrivalThreshold>();
    case AlgorithmKind::kNGuess:
      return std::make_unique<NGuessRandomOrder>(seed);
  }
  return nullptr;
}

enum class Family { kUniform, kPlanted, kZipf, kDominating };

std::string FamilyName(Family family) {
  switch (family) {
    case Family::kUniform:
      return "uniform";
    case Family::kPlanted:
      return "planted";
    case Family::kZipf:
      return "zipf";
    case Family::kDominating:
      return "dominating";
  }
  return "unknown";
}

SetCoverInstance MakeInstance(Family family, uint64_t seed) {
  Rng rng(seed);
  switch (family) {
    case Family::kUniform: {
      UniformRandomParams p;
      p.num_elements = 64;
      p.num_sets = 128;
      p.max_set_size = 7;
      return GenerateUniformRandom(p, rng);
    }
    case Family::kPlanted: {
      PlantedCoverParams p;
      p.num_elements = 64;
      p.num_sets = 128;
      p.planted_cover_size = 4;
      return GeneratePlantedCover(p, rng);
    }
    case Family::kZipf: {
      ZipfParams p;
      p.num_elements = 64;
      p.num_sets = 128;
      p.exponent = 1.2;
      return GenerateZipf(p, rng);
    }
    case Family::kDominating:
      return GenerateDominatingSet(64, 0.08, rng);
  }
  return GeneratePartition(1, 1);
}

using PropertyParam = std::tuple<AlgorithmKind, StreamOrder, Family>;

class CoverProperty : public testing::TestWithParam<PropertyParam> {};

TEST_P(CoverProperty, ProducesValidCover) {
  auto [kind, order, family] = GetParam();
  auto inst = MakeInstance(family, 1000);
  Rng stream_rng(2000);
  auto stream = OrderedStream(inst, order, stream_rng);
  auto algorithm = MakeAlgorithm(kind, 77);
  auto solution = RunStream(*algorithm, stream);
  auto check = ValidateSolution(inst, solution);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST_P(CoverProperty, DeterministicReplay) {
  auto [kind, order, family] = GetParam();
  auto inst = MakeInstance(family, 1001);
  Rng stream_rng(2001);
  auto stream = OrderedStream(inst, order, stream_rng);
  auto a = MakeAlgorithm(kind, 99);
  auto b = MakeAlgorithm(kind, 99);
  auto sa = RunStream(*a, stream);
  auto sb = RunStream(*b, stream);
  EXPECT_EQ(sa.cover, sb.cover);
  EXPECT_EQ(sa.certificate, sb.certificate);
}

TEST_P(CoverProperty, NeverBeatsGreedyByMoreThanItsSpace) {
  // Sanity quality bound: no streaming algorithm returns fewer sets than
  // an offline optimum; greedy lower-bounds OPT well enough here since
  // cover sizes are >= OPT >= greedy/ln(n).
  auto [kind, order, family] = GetParam();
  auto inst = MakeInstance(family, 1002);
  Rng stream_rng(2002);
  auto stream = OrderedStream(inst, order, stream_rng);
  auto algorithm = MakeAlgorithm(kind, 13);
  auto solution = RunStream(*algorithm, stream);
  auto greedy = GreedyCover(inst);
  // ln(64) ≈ 4.16: greedy/5 lower-bounds OPT.
  EXPECT_GE(5 * solution.cover.size() + 4, greedy.cover.size());
}

TEST_P(CoverProperty, PeakSpaceIsPositiveAndBounded) {
  auto [kind, order, family] = GetParam();
  auto inst = MakeInstance(family, 1003);
  Rng stream_rng(2003);
  auto stream = OrderedStream(inst, order, stream_rng);
  auto algorithm = MakeAlgorithm(kind, 21);
  RunStream(*algorithm, stream);
  size_t peak = algorithm->Meter().PeakWords();
  EXPECT_GT(peak, 0u);
  // Nothing should exceed a full copy of the stream plus element state.
  EXPECT_LE(peak, 20 * (inst.NumEdges() + inst.NumElements() +
                        inst.NumSets()));
}

std::string ParamName(const testing::TestParamInfo<PropertyParam>& info) {
  auto [kind, order, family] = info.param;
  std::string name = AlgorithmKindName(kind) + "_" +
                     StreamOrderName(order) + "_" + FamilyName(family);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoverProperty,
    testing::Combine(
        testing::Values(AlgorithmKind::kKk, AlgorithmKind::kAdversarialLevel,
                        AlgorithmKind::kRandomOrder,
                        AlgorithmKind::kFirstSetPatching,
                        AlgorithmKind::kStoreEverything,
                        AlgorithmKind::kSetArrival, AlgorithmKind::kNGuess),
        testing::Values(StreamOrder::kRandom, StreamOrder::kSetMajor,
                        StreamOrder::kElementMajor,
                        StreamOrder::kRoundRobinSets,
                        StreamOrder::kLargeSetsLast),
        testing::Values(Family::kUniform, Family::kPlanted, Family::kZipf,
                        Family::kDominating)),
    ParamName);

// Parameterized sweep over the α knob of Algorithm 2: ratio of space to
// theory prediction must be roughly α-independent (the mn/α² law).
class AlphaSweep : public testing::TestWithParam<double> {};

TEST_P(AlphaSweep, ValidAndClamped) {
  double alpha_mult = GetParam();
  Rng rng(31);
  PlantedCoverParams p;
  p.num_elements = 144;
  p.num_sets = 1024;
  p.planted_cover_size = 4;
  auto inst = GeneratePlantedCover(p, rng);
  AdversarialLevelParams params;
  params.alpha = alpha_mult * 12.0;  // multiples of √144
  AdversarialLevelAlgorithm algorithm(41, params);
  Rng stream_rng(51);
  auto stream = OrderedStream(inst, StreamOrder::kElementMajor, stream_rng);
  auto solution = RunStream(*&algorithm, stream);
  EXPECT_TRUE(ValidateSolution(inst, solution).ok);
  EXPECT_GE(algorithm.EffectiveAlpha(), 24.0);  // 2√n clamp
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSweep,
                         testing::Values(1.0, 2.0, 3.0, 4.0, 6.0, 8.0,
                                         12.0, 16.0));

}  // namespace
}  // namespace setcover
