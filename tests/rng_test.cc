#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace setcover {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next64() == b.Next64()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ZeroSeedIsUsable) {
  Rng rng(0);
  std::set<uint64_t> values;
  for (int i = 0; i < 50; ++i) values.insert(rng.Next64());
  EXPECT_GT(values.size(), 45u);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversAllResidues) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) {
    EXPECT_GT(c, 1600);
    EXPECT_LT(c, 2400);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.UniformDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(double(hits) / trials, 0.3, 0.01);
}

TEST(RngTest, RandomSubsetSizeAndRangeAndSorted) {
  Rng rng(17);
  for (uint32_t k : {0u, 1u, 5u, 50u, 100u}) {
    auto subset = rng.RandomSubset(100, k);
    ASSERT_EQ(subset.size(), k);
    EXPECT_TRUE(std::is_sorted(subset.begin(), subset.end()));
    EXPECT_TRUE(std::adjacent_find(subset.begin(), subset.end()) ==
                subset.end());
    for (uint32_t v : subset) EXPECT_LT(v, 100u);
  }
}

TEST(RngTest, RandomSubsetFullUniverse) {
  Rng rng(19);
  auto subset = rng.RandomSubset(64, 64);
  ASSERT_EQ(subset.size(), 64u);
  for (uint32_t i = 0; i < 64; ++i) EXPECT_EQ(subset[i], i);
}

TEST(RngTest, RandomSubsetIsUniformish) {
  // Every element should appear in a k-of-n subset with rate k/n.
  Rng rng(23);
  std::vector<int> counts(20, 0);
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    for (uint32_t v : rng.RandomSubset(20, 5)) ++counts[v];
  }
  for (int c : counts) {
    EXPECT_NEAR(double(c) / trials, 0.25, 0.05);
  }
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(29);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.Shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleSingletonAndEmpty) {
  Rng rng(31);
  std::vector<int> empty;
  rng.Shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(37);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    equal += (parent.Next64() == child.Next64()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace setcover
