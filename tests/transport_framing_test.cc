// Transport framing under short I/O and dialect negotiation: frames
// must survive reads and writes fragmented at every byte boundary in
// both directions (the splitting-connection satellite), and one
// ListenUnix listener must serve framed (ConnectUnix) and
// shared-memory (ConnectShm) clients side by side, each finishing a
// real session bit-identical to the engine oracle.

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "engine/engine.h"
#include "instance/generators.h"
#include "server/client.h"
#include "server/server.h"
#include "server/transport.h"
#include "stream/orderings.h"
#include "util/rng.h"

namespace setcover {
namespace server {
namespace {

std::vector<uint8_t> Pattern(size_t size, uint8_t salt) {
  std::vector<uint8_t> bytes(size);
  for (size_t i = 0; i < size; ++i) bytes[i] = uint8_t(salt + i * 131);
  return bytes;
}

/// A connected pair of framed connections over a socketpair, each
/// side's syscalls capped at max_io bytes.
struct SplitPair {
  std::unique_ptr<Connection> a;
  std::unique_ptr<Connection> b;
};

SplitPair MakeSplitPair(size_t max_io_a, size_t max_io_b) {
  int fds[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  return {WrapFdForTest(fds[0], max_io_a), WrapFdForTest(fds[1], max_io_b)};
}

// max_io = 1 byte: the length prefix itself arrives in four separate
// reads, the payload byte by byte — framing must reassemble exactly.
TEST(TransportFraming, OneBytePerSyscallBothDirections) {
  SplitPair pair = MakeSplitPair(1, 1);

  for (const size_t size : {size_t(0), size_t(1), size_t(3), size_t(257)}) {
    const std::vector<uint8_t> sent = Pattern(size, uint8_t(size));
    std::thread sender([&] { ASSERT_TRUE(pair.a->Send(sent)); });
    std::vector<uint8_t> received;
    ASSERT_TRUE(pair.b->Receive(&received));
    sender.join();
    EXPECT_EQ(received, sent) << "a->b size=" << size;

    std::thread replier([&] { ASSERT_TRUE(pair.b->Send(sent)); });
    ASSERT_TRUE(pair.a->Receive(&received));
    replier.join();
    EXPECT_EQ(received, sent) << "b->a size=" << size;
  }
}

// Sweep asymmetric caps, including ones that split the frame inside
// the prefix (2, 3), across the prefix/payload boundary (5, 7), and
// mid-payload (64) — with real protocol-sized frames.
TEST(TransportFraming, FragmentationSweepWithLargeFrames) {
  for (const size_t cap : {size_t(2), size_t(3), size_t(5), size_t(7),
                           size_t(64)}) {
    SplitPair pair = MakeSplitPair(cap, cap == 2 ? 3 : 1);
    const std::vector<uint8_t> big = Pattern(60000, uint8_t(cap));
    std::thread sender([&] {
      ASSERT_TRUE(pair.a->Send(big));
      std::vector<uint8_t> echoed;
      ASSERT_TRUE(pair.a->Receive(&echoed));
      EXPECT_EQ(echoed.size(), big.size());
    });
    std::vector<uint8_t> received;
    ASSERT_TRUE(pair.b->Receive(&received));
    EXPECT_EQ(received, big) << "cap=" << cap;
    ASSERT_TRUE(pair.b->Send(received));
    sender.join();
  }
}

TEST(TransportFraming, OversizeFrameIsRefusedBySend) {
  SplitPair pair = MakeSplitPair(0, 0);
  const std::vector<uint8_t> huge((1u << 20) + 2048, 0);
  EXPECT_FALSE(pair.a->Send(huge));
}

TEST(TransportFraming, CloseUnblocksAReceiver) {
  SplitPair pair = MakeSplitPair(0, 0);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    pair.a->Close();
  });
  std::vector<uint8_t> received;
  EXPECT_FALSE(pair.b->Receive(&received));
  closer.join();
}

// One listener, two dialects: a framed client and a shared-memory
// client run complete sessions against the same SessionServer and both
// match the engine oracle. This is the hybrid-negotiation smoke.
TEST(TransportFraming, UnixListenerServesFramedAndShmClientsTogether) {
  Rng rng(411);
  UniformRandomParams p;
  p.num_elements = 60;
  p.num_sets = 80;
  SetCoverInstance instance = GenerateUniformRandom(p, rng);
  EdgeStream stream = OrderedStream(instance, StreamOrder::kRandom, rng);
  const std::string algorithm = RegisteredAlgorithmNames().front();

  engine::RunConfig config;
  config.algorithm = algorithm;
  config.options.seed = 5;
  config.source = engine::SourceSpec::InMemory(stream);
  engine::RunReport expected = engine::Execute(config);
  ASSERT_TRUE(expected.completed) << expected.error;

  const std::string path = testing::TempDir() + "framing_hybrid_" +
                           std::to_string(::getpid()) + ".sock";
  std::string error;
  std::unique_ptr<Listener> listener = ListenUnix(path, &error);
  ASSERT_NE(listener, nullptr) << error;
  ServerOptions options;
  options.worker_threads = 2;
  SessionServer server(options, std::move(listener));
  server.Start();

  OpenBody open;
  open.algorithm = algorithm;
  open.seed = 5;
  open.meta = stream.meta;

  auto run_one = [&](uint64_t session_id, bool shm, Message* reply,
                     std::string* run_error) {
    ClientOptions client_options;
    client_options.backoff.max_retries = 64;
    client_options.backoff.initial_delay_us = 50;
    client_options.backoff.max_delay_us = 2000;
    SessionClient client(
        [&path, shm](std::string* dial_error) {
          return shm ? ConnectShm(path, 1u << 20, dial_error)
                     : ConnectUnix(path, dial_error);
        },
        client_options);
    return RunSessionToCompletion(&client, session_id, open, stream.edges,
                                  97, reply, run_error);
  };

  Message framed_reply, shm_reply;
  std::string framed_error, shm_error;
  std::thread framed([&] {
    ASSERT_TRUE(run_one(1, false, &framed_reply, &framed_error))
        << framed_error;
  });
  std::thread shm([&] {
    ASSERT_TRUE(run_one(2, true, &shm_reply, &shm_error)) << shm_error;
  });
  framed.join();
  shm.join();
  server.DrainAndStop();

  const std::vector<uint32_t> cover(expected.solution.cover.begin(),
                                    expected.solution.cover.end());
  const std::vector<uint32_t> certificate(
      expected.solution.certificate.begin(),
      expected.solution.certificate.end());
  EXPECT_EQ(framed_reply.cover, cover);
  EXPECT_EQ(shm_reply.cover, cover);
  EXPECT_EQ(framed_reply.certificate, certificate);
  EXPECT_EQ(shm_reply.certificate, certificate);
  EXPECT_EQ(shm_reply.edges_delivered, expected.edges_delivered);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace server
}  // namespace setcover
