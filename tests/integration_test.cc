// Cross-module integration tests: full pipelines from generator through
// ordering, streaming algorithm, validation and quality comparison.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/adversarial_level.h"
#include "core/kk_algorithm.h"
#include "core/multi_run.h"
#include "core/random_order.h"
#include "core/set_arrival.h"
#include "core/trivial.h"
#include "instance/generators.h"
#include "instance/io.h"
#include "offline/exact.h"
#include "offline/greedy.h"
#include "tests/test_util.h"

namespace setcover {
namespace {

std::vector<std::unique_ptr<StreamingSetCoverAlgorithm>> AllAlgorithms(
    uint64_t seed) {
  std::vector<std::unique_ptr<StreamingSetCoverAlgorithm>> algorithms;
  algorithms.push_back(std::make_unique<KkAlgorithm>(seed));
  algorithms.push_back(std::make_unique<AdversarialLevelAlgorithm>(seed));
  algorithms.push_back(std::make_unique<RandomOrderAlgorithm>(seed));
  algorithms.push_back(std::make_unique<FirstSetPatching>());
  algorithms.push_back(std::make_unique<StoreEverythingGreedy>());
  algorithms.push_back(std::make_unique<SetArrivalThreshold>());
  algorithms.push_back(std::make_unique<NGuessRandomOrder>(seed));
  return algorithms;
}

TEST(IntegrationTest, EveryAlgorithmCoversEveryFamily) {
  Rng rng(1);
  std::vector<SetCoverInstance> instances;
  {
    UniformRandomParams p;
    p.num_elements = 80;
    p.num_sets = 120;
    p.max_set_size = 9;
    instances.push_back(GenerateUniformRandom(p, rng));
  }
  {
    PlantedCoverParams p;
    p.num_elements = 90;
    p.num_sets = 150;
    p.planted_cover_size = 5;
    instances.push_back(GeneratePlantedCover(p, rng));
  }
  {
    ZipfParams p;
    p.num_elements = 70;
    p.num_sets = 200;
    p.exponent = 1.1;
    instances.push_back(GenerateZipf(p, rng));
  }
  instances.push_back(GenerateDominatingSet(60, 0.1, rng));
  instances.push_back(GeneratePartition(64, 8));

  uint64_t seed = 42;
  for (const auto& inst : instances) {
    for (auto& algorithm : AllAlgorithms(seed++)) {
      RunAndValidate(*algorithm, inst, StreamOrder::kRandom, seed);
    }
  }
}

TEST(IntegrationTest, StreamingNeverBeatsExactAndAlwaysCovers) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    UniformRandomParams p;
    p.num_elements = 14;
    p.num_sets = 16;
    p.max_set_size = 5;
    auto inst = GenerateUniformRandom(p, rng);
    auto exact = ExactCover(inst);
    ASSERT_TRUE(exact.has_value());
    for (auto& algorithm : AllAlgorithms(trial)) {
      auto sol =
          RunAndValidate(*algorithm, inst, StreamOrder::kRandom, trial);
      EXPECT_GE(sol.cover.size(), exact->cover.size())
          << algorithm->Name();
    }
  }
}

TEST(IntegrationTest, QualityOrderingOnPlantedInstance) {
  // Full-space greedy <= KK <= trivial-ish bounds, on a planted
  // instance with strong structure.
  Rng rng(3);
  PlantedCoverParams p;
  p.num_elements = 256;
  p.num_sets = 2048;
  p.planted_cover_size = 4;
  p.decoy_max_size = 4;
  auto inst = GeneratePlantedCover(p, rng);

  StoreEverythingGreedy greedy;
  auto greedy_sol = RunAndValidate(greedy, inst, StreamOrder::kRandom, 7);
  KkAlgorithm kk(11);
  auto kk_sol = RunAndValidate(kk, inst, StreamOrder::kRandom, 7);
  EXPECT_LE(greedy_sol.cover.size(), kk_sol.cover.size());
  EXPECT_LE(kk_sol.cover.size(), size_t(inst.NumElements()));
}

TEST(IntegrationTest, SpaceOrderingMatchesTable1) {
  // On m ≫ n instances: random-order algorithm < KK < store-everything.
  Rng rng(4);
  PlantedCoverParams p;
  p.num_elements = 256;
  p.num_sets = 65536;  // m = n²
  p.planted_cover_size = 4;
  p.decoy_max_size = 4;
  auto inst = GeneratePlantedCover(p, rng);
  auto stream = RandomOrderStream(inst, rng);

  RandomOrderAlgorithm random_order(5);
  RunStream(random_order, stream);
  KkAlgorithm kk(5);
  RunStream(kk, stream);
  StoreEverythingGreedy everything;
  RunStream(everything, stream);

  EXPECT_LT(random_order.Meter().PeakWords(), kk.Meter().PeakWords())
      << random_order.Meter().BreakdownString();
  EXPECT_LT(kk.Meter().PeakWords(), everything.Meter().PeakWords());
}

TEST(IntegrationTest, InstanceSurvivesIoThenSolves) {
  Rng rng(5);
  PlantedCoverParams p;
  p.num_elements = 50;
  p.num_sets = 80;
  p.planted_cover_size = 4;
  auto inst = GeneratePlantedCover(p, rng);
  std::string path = testing::TempDir() + "/integration_instance.txt";
  ASSERT_TRUE(WriteInstanceFile(inst, path));
  std::string error;
  auto loaded = ReadInstanceFile(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  KkAlgorithm kk(9);
  auto sol = RunAndValidate(kk, *loaded, StreamOrder::kRandom, 6);
  EXPECT_GE(sol.cover.size(), loaded->PlantedCover().size());
}

TEST(IntegrationTest, DominatingSetPipelineMatchesKkSpecialCase) {
  // m = n: the Dominating Set special case through which Theorem 1 was
  // derived. All algorithms must handle it.
  Rng rng(6);
  auto inst = GenerateDominatingSet(128, 0.05, rng);
  for (auto& algorithm : AllAlgorithms(17)) {
    RunAndValidate(*algorithm, inst, StreamOrder::kRandom, 8);
  }
}

}  // namespace
}  // namespace setcover
