#include "util/bitset.h"

#include <gtest/gtest.h>

namespace setcover {
namespace {

TEST(BitsetTest, StartsClear) {
  DynamicBitset bits(100);
  EXPECT_EQ(bits.size(), 100u);
  EXPECT_EQ(bits.Count(), 0u);
  EXPECT_TRUE(bits.None());
  for (size_t i = 0; i < 100; ++i) EXPECT_FALSE(bits.Test(i));
}

TEST(BitsetTest, SetAndTest) {
  DynamicBitset bits(130);  // spans three words
  EXPECT_TRUE(bits.Set(0));
  EXPECT_TRUE(bits.Set(63));
  EXPECT_TRUE(bits.Set(64));
  EXPECT_TRUE(bits.Set(129));
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(129));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_FALSE(bits.Test(128));
  EXPECT_EQ(bits.Count(), 4u);
}

TEST(BitsetTest, SetReturnsFalseWhenAlreadySet) {
  DynamicBitset bits(10);
  EXPECT_TRUE(bits.Set(5));
  EXPECT_FALSE(bits.Set(5));
  EXPECT_EQ(bits.Count(), 1u);
}

TEST(BitsetTest, Reset) {
  DynamicBitset bits(10);
  bits.Set(3);
  bits.Reset(3);
  EXPECT_FALSE(bits.Test(3));
  EXPECT_EQ(bits.Count(), 0u);
  bits.Reset(3);  // double reset is a no-op
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(BitsetTest, All) {
  DynamicBitset bits(65);
  for (size_t i = 0; i < 65; ++i) bits.Set(i);
  EXPECT_TRUE(bits.All());
  bits.Reset(64);
  EXPECT_FALSE(bits.All());
}

TEST(BitsetTest, Clear) {
  DynamicBitset bits(200);
  for (size_t i = 0; i < 200; i += 3) bits.Set(i);
  bits.Clear();
  EXPECT_TRUE(bits.None());
  for (size_t i = 0; i < 200; ++i) EXPECT_FALSE(bits.Test(i));
}

TEST(BitsetTest, WordsUsed) {
  EXPECT_EQ(DynamicBitset(0).WordsUsed(), 0u);
  EXPECT_EQ(DynamicBitset(1).WordsUsed(), 1u);
  EXPECT_EQ(DynamicBitset(64).WordsUsed(), 1u);
  EXPECT_EQ(DynamicBitset(65).WordsUsed(), 2u);
  EXPECT_EQ(DynamicBitset(1024).WordsUsed(), 16u);
}

}  // namespace
}  // namespace setcover
