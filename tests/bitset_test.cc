#include "util/bitset.h"

#include <gtest/gtest.h>

namespace setcover {
namespace {

TEST(BitsetTest, StartsClear) {
  DynamicBitset bits(100);
  EXPECT_EQ(bits.size(), 100u);
  EXPECT_EQ(bits.Count(), 0u);
  EXPECT_TRUE(bits.None());
  for (size_t i = 0; i < 100; ++i) EXPECT_FALSE(bits.Test(i));
}

TEST(BitsetTest, SetAndTest) {
  DynamicBitset bits(130);  // spans three words
  EXPECT_TRUE(bits.Set(0));
  EXPECT_TRUE(bits.Set(63));
  EXPECT_TRUE(bits.Set(64));
  EXPECT_TRUE(bits.Set(129));
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(129));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_FALSE(bits.Test(128));
  EXPECT_EQ(bits.Count(), 4u);
}

TEST(BitsetTest, SetReturnsFalseWhenAlreadySet) {
  DynamicBitset bits(10);
  EXPECT_TRUE(bits.Set(5));
  EXPECT_FALSE(bits.Set(5));
  EXPECT_EQ(bits.Count(), 1u);
}

TEST(BitsetTest, Reset) {
  DynamicBitset bits(10);
  bits.Set(3);
  bits.Reset(3);
  EXPECT_FALSE(bits.Test(3));
  EXPECT_EQ(bits.Count(), 0u);
  bits.Reset(3);  // double reset is a no-op
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(BitsetTest, All) {
  DynamicBitset bits(65);
  for (size_t i = 0; i < 65; ++i) bits.Set(i);
  EXPECT_TRUE(bits.All());
  bits.Reset(64);
  EXPECT_FALSE(bits.All());
}

TEST(BitsetTest, Clear) {
  DynamicBitset bits(200);
  for (size_t i = 0; i < 200; i += 3) bits.Set(i);
  bits.Clear();
  EXPECT_TRUE(bits.None());
  for (size_t i = 0; i < 200; ++i) EXPECT_FALSE(bits.Test(i));
}

TEST(BitsetTest, AssignResizesAndClears) {
  DynamicBitset bits(10);
  bits.Set(3);
  bits.Set(7);
  bits.Assign(200);
  EXPECT_EQ(bits.size(), 200u);
  EXPECT_EQ(bits.Count(), 0u);
  for (size_t i = 0; i < 200; ++i) EXPECT_FALSE(bits.Test(i));
  bits.Set(130);
  bits.Assign(10);  // shrink: old bits must not survive
  EXPECT_EQ(bits.size(), 10u);
  EXPECT_TRUE(bits.None());
}

TEST(BitsetTest, WordAccess) {
  DynamicBitset bits(130);
  EXPECT_EQ(bits.WordCount(), 3u);
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(129);
  EXPECT_EQ(bits.Word(0), (uint64_t{1} << 63) | 1u);
  EXPECT_EQ(bits.Word(1), 1u);
  EXPECT_EQ(bits.Word(2), uint64_t{1} << 1);
}

TEST(BitsetTest, FetchOrWordReturnsNewlySetBits) {
  DynamicBitset bits(128);
  bits.Set(65);
  // Word 1 holds bit 65; OR-in bits 64..67 — only 64, 66, 67 are new.
  uint64_t mask = 0b1111;
  uint64_t newly = bits.FetchOrWord(1, mask);
  EXPECT_EQ(newly, 0b1101u);
  EXPECT_EQ(bits.Count(), 4u);
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(66));
  EXPECT_TRUE(bits.Test(67));
  // Re-applying the same mask sets nothing new and leaves Count alone.
  EXPECT_EQ(bits.FetchOrWord(1, mask), 0u);
  EXPECT_EQ(bits.Count(), 4u);
}

TEST(BitsetTest, CountRange) {
  DynamicBitset bits(300);
  for (size_t i = 0; i < 300; i += 7) bits.Set(i);
  // Brute-force comparison over a spread of ranges, including
  // word-straddling and empty ones.
  const size_t probes[] = {0, 1, 7, 63, 64, 65, 127, 128, 200, 299, 300};
  for (size_t lo : probes) {
    for (size_t hi : probes) {
      size_t want = 0;
      for (size_t i = lo; i < hi && i < 300; ++i) want += bits.Test(i);
      EXPECT_EQ(bits.CountRange(lo, hi), want)
          << "range [" << lo << ", " << hi << ")";
    }
  }
  // Out-of-range bounds clamp.
  EXPECT_EQ(bits.CountRange(0, 100000), bits.Count());
  EXPECT_EQ(bits.CountRange(400, 500), 0u);
}

TEST(BitsetTest, WordsUsed) {
  EXPECT_EQ(DynamicBitset(0).WordsUsed(), 0u);
  EXPECT_EQ(DynamicBitset(1).WordsUsed(), 1u);
  EXPECT_EQ(DynamicBitset(64).WordsUsed(), 1u);
  EXPECT_EQ(DynamicBitset(65).WordsUsed(), 2u);
  EXPECT_EQ(DynamicBitset(1024).WordsUsed(), 16u);
}

}  // namespace
}  // namespace setcover
