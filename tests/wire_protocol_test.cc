// The session-server wire protocol: every message type round-trips
// bit-exactly, and no single-byte corruption, truncation, oversize, or
// trailing-garbage frame survives DecodeMessage. scripts/check.sh runs
// this under ASan — hostile bytes must fail cleanly, never crash.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/protocol.h"
#include "util/crc32.h"

namespace setcover {
namespace server {
namespace {

Message SampleOpen() {
  Message m;
  m.type = MessageType::kOpen;
  m.session_id = 42;
  m.open.algorithm = "greedy-threshold";
  m.open.seed = 21;
  m.open.meta.num_sets = 80;
  m.open.meta.num_elements = 60;
  m.open.meta.stream_length = 512;
  m.open.checkpoint_every = 64;
  FaultSchedule faults = FaultSchedule::AllKinds(7);
  m.open.faults = faults;
  return m;
}

Message SampleIngest() {
  Message m;
  m.type = MessageType::kIngest;
  m.session_id = 42;
  m.sequence = 17;
  for (uint32_t i = 0; i < 100; ++i)
    m.edges.push_back(Edge{i % 13, i % 7});
  return m;
}

Message SampleFinalizeOk() {
  Message m;
  m.type = MessageType::kFinalizeOk;
  m.session_id = 42;
  m.degraded = true;
  m.edges_delivered = 512;
  m.uncovered_elements = 3;
  m.peak_words = 1000;
  m.current_words = 900;
  m.transient_retries = 4;
  m.corrupt_records_skipped = 5;
  m.faults_survived = 9;
  m.cover = {1, 5, 9};
  m.certificate = {1, 1, 5, 9, 5};
  return m;
}

Message SampleSessionStats() {
  Message m;
  m.type = MessageType::kStatsOk;
  m.session_id = 42;
  m.session_stats.edges_delivered = 512;
  m.session_stats.batches = 8;
  m.session_stats.ingest_calls = 8;
  m.session_stats.duplicate_ingests = 2;
  m.session_stats.checkpoints_written = 3;
  m.session_stats.transient_retries = 4;
  m.session_stats.corrupt_records_skipped = 5;
  m.session_stats.faults_survived = 9;
  m.session_stats.last_sequence = 8;
  m.session_stats.resumed = true;
  m.session_stats.finalized = false;
  m.session_stats.degraded = true;
  m.session_stats.setup_seconds = 0.25;
  m.session_stats.stream_seconds = 1.5;
  m.session_stats.finalize_seconds = 0.125;
  m.session_stats.peak_words = 1000;
  m.session_stats.current_words = 900;
  return m;
}

std::vector<Message> AllSamples() {
  std::vector<Message> samples;
  samples.push_back(SampleOpen());
  {
    Message m = SampleOpen();  // open without faults
    m.open.faults.reset();
    samples.push_back(m);
  }
  samples.push_back(SampleIngest());
  {
    Message m = SampleIngest();  // empty batch is legal
    m.edges.clear();
    samples.push_back(m);
  }
  for (MessageType type : {MessageType::kCheckpoint, MessageType::kClose,
                           MessageType::kCloseOk}) {
    Message m;
    m.type = type;
    m.session_id = 42;
    samples.push_back(m);
  }
  {
    Message m;  // finalize, fenced on cursor 7
    m.type = MessageType::kFinalize;
    m.session_id = 42;
    m.sequence = 7;
    samples.push_back(m);
  }
  {
    Message m;
    m.type = MessageType::kOpenOk;
    m.session_id = 42;
    m.resumed = true;
    m.last_sequence = 17;
    m.edges_delivered = 512;
    samples.push_back(m);
  }
  {
    Message m;
    m.type = MessageType::kIngestOk;
    m.session_id = 42;
    m.duplicate = true;
    m.last_sequence = 17;
    m.checkpoints_written = 1;
    samples.push_back(m);
  }
  {
    Message m;
    m.type = MessageType::kCheckpointOk;
    m.session_id = 42;
    m.checkpoints_written = 3;
    samples.push_back(m);
  }
  samples.push_back(SampleFinalizeOk());
  samples.push_back(SampleSessionStats());
  {
    Message m;  // server-scope stats
    m.type = MessageType::kStatsOk;
    m.session_id = 0;
    m.open_sessions = 12;
    m.frames_received = 999;
    m.sheds = 7;
    m.total_edges_delivered = 123456;
    samples.push_back(m);
  }
  samples.push_back(MakeRetryAfter(42, 500, RetryReason::kDraining));
  samples.push_back(MakeError(42, "something broke"));
  return samples;
}

void ExpectEqual(const Message& a, const Message& b,
                 const std::string& context) {
  EXPECT_EQ(int(a.type), int(b.type)) << context;
  EXPECT_EQ(a.session_id, b.session_id) << context;
  EXPECT_EQ(a.open.algorithm, b.open.algorithm) << context;
  EXPECT_EQ(a.open.seed, b.open.seed) << context;
  EXPECT_EQ(a.open.meta.num_sets, b.open.meta.num_sets) << context;
  EXPECT_EQ(a.open.meta.num_elements, b.open.meta.num_elements) << context;
  EXPECT_EQ(a.open.meta.stream_length, b.open.meta.stream_length) << context;
  EXPECT_EQ(a.open.checkpoint_every, b.open.checkpoint_every) << context;
  ASSERT_EQ(a.open.faults.has_value(), b.open.faults.has_value()) << context;
  if (a.open.faults.has_value()) {
    EXPECT_EQ(a.open.faults->seed, b.open.faults->seed) << context;
    EXPECT_EQ(a.open.faults->transient_rate, b.open.faults->transient_rate)
        << context;
    EXPECT_EQ(a.open.faults->duplicate_rate, b.open.faults->duplicate_rate)
        << context;
    EXPECT_EQ(a.open.faults->drop_rate, b.open.faults->drop_rate) << context;
    EXPECT_EQ(a.open.faults->corrupt_rate, b.open.faults->corrupt_rate)
        << context;
    EXPECT_EQ(a.open.faults->transient_failures,
              b.open.faults->transient_failures)
        << context;
  }
  EXPECT_EQ(a.sequence, b.sequence) << context;
  ASSERT_EQ(a.edges.size(), b.edges.size()) << context;
  for (size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i].set, b.edges[i].set) << context;
    EXPECT_EQ(a.edges[i].element, b.edges[i].element) << context;
  }
  EXPECT_EQ(a.resumed, b.resumed) << context;
  EXPECT_EQ(a.duplicate, b.duplicate) << context;
  EXPECT_EQ(a.last_sequence, b.last_sequence) << context;
  EXPECT_EQ(a.checkpoints_written, b.checkpoints_written) << context;
  EXPECT_EQ(a.degraded, b.degraded) << context;
  EXPECT_EQ(a.edges_delivered, b.edges_delivered) << context;
  EXPECT_EQ(a.uncovered_elements, b.uncovered_elements) << context;
  EXPECT_EQ(a.peak_words, b.peak_words) << context;
  EXPECT_EQ(a.current_words, b.current_words) << context;
  EXPECT_EQ(a.transient_retries, b.transient_retries) << context;
  EXPECT_EQ(a.corrupt_records_skipped, b.corrupt_records_skipped) << context;
  EXPECT_EQ(a.faults_survived, b.faults_survived) << context;
  EXPECT_EQ(a.cover, b.cover) << context;
  EXPECT_EQ(a.certificate, b.certificate) << context;
  EXPECT_EQ(a.session_stats.edges_delivered,
            b.session_stats.edges_delivered)
      << context;
  EXPECT_EQ(a.session_stats.last_sequence, b.session_stats.last_sequence)
      << context;
  EXPECT_EQ(a.session_stats.setup_seconds, b.session_stats.setup_seconds)
      << context;
  EXPECT_EQ(a.session_stats.resumed, b.session_stats.resumed) << context;
  EXPECT_EQ(a.open_sessions, b.open_sessions) << context;
  EXPECT_EQ(a.frames_received, b.frames_received) << context;
  EXPECT_EQ(a.sheds, b.sheds) << context;
  EXPECT_EQ(a.total_edges_delivered, b.total_edges_delivered) << context;
  EXPECT_EQ(a.retry_after_us, b.retry_after_us) << context;
  EXPECT_EQ(int(a.retry_reason), int(b.retry_reason)) << context;
  EXPECT_EQ(a.error, b.error) << context;
}

TEST(WireProtocol, EveryMessageTypeRoundTrips) {
  for (const Message& sample : AllSamples()) {
    const std::string context = "type=" + std::to_string(int(sample.type));
    const std::vector<uint8_t> payload = EncodeMessage(sample);
    std::string error;
    std::optional<Message> decoded = DecodeMessage(payload, &error);
    ASSERT_TRUE(decoded.has_value()) << context << ": " << error;
    ExpectEqual(sample, *decoded, context);
  }
}

// The ASan fuzz surface: flipping any single byte of any sample frame
// must be caught by the CRC-32C — a clean reject with a diagnostic,
// never a crash or overrun.
TEST(WireProtocol, EverySingleByteFlipIsRejected) {
  for (const Message& sample : AllSamples()) {
    const std::vector<uint8_t> payload = EncodeMessage(sample);
    for (size_t i = 0; i < payload.size(); ++i) {
      for (uint8_t flip : {uint8_t(0x01), uint8_t(0x80), uint8_t(0xff)}) {
        std::vector<uint8_t> damaged = payload;
        damaged[i] ^= flip;
        std::string error;
        EXPECT_FALSE(DecodeMessage(damaged, &error).has_value())
            << "type=" << int(sample.type) << " byte=" << i;
        EXPECT_FALSE(error.empty());
      }
    }
  }
}

TEST(WireProtocol, TruncationAtEveryLengthIsRejected) {
  const std::vector<uint8_t> payload = EncodeMessage(SampleIngest());
  for (size_t keep = 0; keep < payload.size(); ++keep) {
    std::vector<uint8_t> truncated(payload.begin(), payload.begin() + keep);
    std::string error;
    EXPECT_FALSE(DecodeMessage(truncated, &error).has_value())
        << "keep=" << keep;
  }
}

// Even with a freshly recomputed (valid) CRC, bytes the body does not
// consume must fail decoding — nothing may smuggle a payload ride-along.
TEST(WireProtocol, TrailingBytesAreRejectedEvenWithValidCrc) {
  Message m;
  m.type = MessageType::kCheckpointOk;
  m.session_id = 1;
  m.checkpoints_written = 2;
  std::vector<uint8_t> payload = EncodeMessage(m);
  payload.resize(payload.size() - 4);  // strip the CRC
  payload.push_back(0xaa);             // trailing garbage
  const uint32_t crc = Crc32c(payload.data(), payload.size());
  for (int i = 0; i < 4; ++i) payload.push_back(uint8_t(crc >> (8 * i)));

  std::string error;
  EXPECT_FALSE(DecodeMessage(payload, &error).has_value());
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

TEST(WireProtocol, OversizeFramesAndOversizeBatchesAreRejected) {
  std::vector<uint8_t> huge(kMaxFrameBytes + 1, 0);
  std::string error;
  EXPECT_FALSE(DecodeMessage(huge, &error).has_value());
  EXPECT_NE(error.find("too large"), std::string::npos) << error;

  Message m = SampleIngest();
  m.edges.assign(kMaxIngestEdges + 1, Edge{1, 1});
  const std::vector<uint8_t> payload = EncodeMessage(m);
  EXPECT_FALSE(DecodeMessage(payload, &error).has_value());
}

// The zero-copy ingest encoder must be indistinguishable on the wire
// from the Message-based one, batch by batch — including empty.
TEST(WireProtocol, EncodeIngestMatchesEncodeMessageByteForByte) {
  for (const size_t count : {size_t(0), size_t(1), size_t(100),
                             size_t(4096)}) {
    std::vector<Edge> edges;
    for (size_t i = 0; i < count; ++i)
      edges.push_back(Edge{uint32_t(i * 7 % 1000), uint32_t(i % 61)});

    Message m;
    m.type = MessageType::kIngest;
    m.session_id = 42;
    m.sequence = 17;
    m.edges = edges;
    const std::vector<uint8_t> via_message = EncodeMessage(m);

    std::vector<uint8_t> via_span;
    EncodeIngest(42, 17, edges, &via_span);
    EXPECT_EQ(via_span, via_message) << "count=" << count;
  }
}

// The arena overload must produce identical bytes even into a dirty
// buffer left over from a previous (larger) message.
TEST(WireProtocol, ArenaEncodeIntoDirtyBufferIsIdentical) {
  const Message big = SampleFinalizeOk();
  const Message small = SampleIngest();
  std::vector<uint8_t> arena;
  EncodeMessage(big, &arena);
  EXPECT_EQ(arena, EncodeMessage(big));
  EncodeMessage(small, &arena);
  EXPECT_EQ(arena, EncodeMessage(small));

  std::vector<uint8_t> dirty(4096, 0xee);
  EncodeIngest(small.session_id, small.sequence, small.edges, &dirty);
  EXPECT_EQ(dirty, EncodeMessage(small));
}

// A maximum-size batch survives the bulk encode/decode round trip.
TEST(WireProtocol, MaxBatchRoundTripsThroughBulkPaths) {
  std::vector<Edge> edges(kMaxIngestEdges);
  for (size_t i = 0; i < edges.size(); ++i)
    edges[i] = Edge{uint32_t(i), uint32_t(~i)};
  std::vector<uint8_t> payload;
  EncodeIngest(7, 123456789, edges, &payload);
  ASSERT_LE(payload.size(), kMaxFrameBytes);

  std::string error;
  std::optional<Message> decoded = DecodeMessage(payload, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->type, MessageType::kIngest);
  EXPECT_EQ(decoded->session_id, 7u);
  EXPECT_EQ(decoded->sequence, 123456789u);
  ASSERT_EQ(decoded->edges.size(), edges.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    ASSERT_EQ(decoded->edges[i].set, edges[i].set) << i;
    ASSERT_EQ(decoded->edges[i].element, edges[i].element) << i;
  }
}

TEST(WireProtocol, UnknownTypeWithValidCrcIsRejected) {
  Message m;
  m.type = MessageType::kCheckpointOk;
  m.session_id = 9;
  std::vector<uint8_t> payload = EncodeMessage(m);
  payload[0] = 200;  // not a MessageType
  const uint32_t crc = Crc32c(payload.data(), payload.size() - 4);
  for (int i = 0; i < 4; ++i)
    payload[payload.size() - 4 + i] = uint8_t(crc >> (8 * i));
  std::string error;
  EXPECT_FALSE(DecodeMessage(payload, &error).has_value());
  EXPECT_NE(error.find("unknown"), std::string::npos) << error;
}

}  // namespace
}  // namespace server
}  // namespace setcover
