#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/multi_run.h"
#include "core/random_order.h"
#include "core/registry.h"
#include "instance/generators.h"
#include "stream/orderings.h"
#include "util/rng.h"

namespace setcover {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(threads);
    constexpr size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.RunIndexed(kCount, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ThreadPool, HandlesCountSmallerThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.RunIndexed(3, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
  pool.RunIndexed(0, [&](size_t) { FAIL() << "empty job must not run"; });
}

TEST(ThreadPool, IsReusableAcrossJobs) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.RunIndexed(17, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50u * 17u);
}

TEST(ThreadPool, PropagatesLowestIndexException) {
  ThreadPool pool(4);
  try {
    pool.RunIndexed(100, [&](size_t i) {
      if (i == 13 || i == 77) {
        throw std::runtime_error("boom at " + std::to_string(i));
      }
    });
    FAIL() << "expected RunIndexed to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 13");
  }
  // The pool must survive a throwing job and accept new work.
  std::atomic<int> ran{0};
  pool.RunIndexed(10, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 10);
}

EdgeStream SmallStream() {
  PlantedCoverParams params;
  params.num_elements = 128;
  params.num_sets = 1024;
  params.planted_cover_size = 6;
  Rng rng(21);
  SetCoverInstance instance = GeneratePlantedCover(params, rng);
  Rng order_rng(22);
  return OrderedStream(instance, StreamOrder::kRandom, order_rng);
}

// The parallel drivers promise bit-identical results at any thread
// count: same cover, same certificate, same encoded state, same
// reported meter peak.
TEST(ParallelDeterminism, NGuessIsBitIdenticalAcrossThreadCounts) {
  const EdgeStream stream = SmallStream();
  CoverSolution reference;
  std::vector<uint64_t> reference_state;
  size_t reference_peak = 0;
  for (unsigned threads : {1u, 2u, 8u}) {
    AlgorithmOptions options;
    options.threads = threads;
    auto algorithm = MakeAlgorithmByName("random-order-nguess", options);
    ASSERT_NE(algorithm, nullptr);
    algorithm->Begin(stream.meta);
    for (const Edge& e : stream.edges) algorithm->ProcessEdge(e);
    StateEncoder encoder;
    algorithm->EncodeState(&encoder);
    CoverSolution solution = algorithm->Finalize();
    if (threads == 1) {
      reference = solution;
      reference_state = encoder.Words();
      reference_peak = algorithm->Meter().PeakWords();
    } else {
      EXPECT_EQ(solution.cover, reference.cover) << "threads=" << threads;
      EXPECT_EQ(solution.certificate, reference.certificate)
          << "threads=" << threads;
      EXPECT_EQ(encoder.Words(), reference_state) << "threads=" << threads;
      EXPECT_EQ(algorithm->Meter().PeakWords(), reference_peak)
          << "threads=" << threads;
    }
  }
}

TEST(ParallelDeterminism, BestOfRunsIsBitIdenticalAcrossThreadCounts) {
  const EdgeStream stream = SmallStream();
  auto factory = [](uint64_t seed) {
    return std::make_unique<RandomOrderAlgorithm>(seed);
  };
  CoverSolution reference;
  size_t reference_peak = 0;
  for (unsigned threads : {1u, 2u, 8u}) {
    size_t total_peak = 0;
    CoverSolution solution =
        BestOfRuns(factory, /*runs=*/5, /*seed=*/123, stream, &total_peak,
                   threads);
    if (threads == 1) {
      reference = solution;
      reference_peak = total_peak;
    } else {
      EXPECT_EQ(solution.cover, reference.cover) << "threads=" << threads;
      EXPECT_EQ(solution.certificate, reference.certificate)
          << "threads=" << threads;
      EXPECT_EQ(total_peak, reference_peak) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace setcover
