#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/multi_run.h"
#include "core/random_order.h"
#include "core/registry.h"
#include "instance/generators.h"
#include "stream/orderings.h"
#include "util/rng.h"

namespace setcover {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(threads);
    constexpr size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.RunIndexed(kCount, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ThreadPool, HandlesCountSmallerThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.RunIndexed(3, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
  pool.RunIndexed(0, [&](size_t) { FAIL() << "empty job must not run"; });
}

TEST(ThreadPool, IsReusableAcrossJobs) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.RunIndexed(17, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50u * 17u);
}

TEST(ThreadPool, PropagatesLowestIndexException) {
  ThreadPool pool(4);
  try {
    pool.RunIndexed(100, [&](size_t i) {
      if (i == 13 || i == 77) {
        throw std::runtime_error("boom at " + std::to_string(i));
      }
    });
    FAIL() << "expected RunIndexed to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 13");
  }
  // The pool must survive a throwing job and accept new work.
  std::atomic<int> ran{0};
  pool.RunIndexed(10, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 10);
}

EdgeStream SmallStream() {
  PlantedCoverParams params;
  params.num_elements = 128;
  params.num_sets = 1024;
  params.planted_cover_size = 6;
  Rng rng(21);
  SetCoverInstance instance = GeneratePlantedCover(params, rng);
  Rng order_rng(22);
  return OrderedStream(instance, StreamOrder::kRandom, order_rng);
}

// The parallel drivers promise bit-identical results at any thread
// count: same cover, same certificate, same encoded state, same
// reported meter peak.
TEST(ParallelDeterminism, NGuessIsBitIdenticalAcrossThreadCounts) {
  const EdgeStream stream = SmallStream();
  CoverSolution reference;
  std::vector<uint64_t> reference_state;
  size_t reference_peak = 0;
  for (unsigned threads : {1u, 2u, 8u}) {
    AlgorithmOptions options;
    options.threads = threads;
    auto algorithm = MakeAlgorithmByName("random-order-nguess", options);
    ASSERT_NE(algorithm, nullptr);
    algorithm->Begin(stream.meta);
    for (const Edge& e : stream.edges) algorithm->ProcessEdge(e);
    StateEncoder encoder;
    algorithm->EncodeState(&encoder);
    CoverSolution solution = algorithm->Finalize();
    if (threads == 1) {
      reference = solution;
      reference_state = encoder.Words();
      reference_peak = algorithm->Meter().PeakWords();
    } else {
      EXPECT_EQ(solution.cover, reference.cover) << "threads=" << threads;
      EXPECT_EQ(solution.certificate, reference.certificate)
          << "threads=" << threads;
      EXPECT_EQ(encoder.Words(), reference_state) << "threads=" << threads;
      EXPECT_EQ(algorithm->Meter().PeakWords(), reference_peak)
          << "threads=" << threads;
    }
  }
}

TEST(ParallelDeterminism, BestOfRunsIsBitIdenticalAcrossThreadCounts) {
  const EdgeStream stream = SmallStream();
  auto factory = [](uint64_t seed) {
    return std::make_unique<RandomOrderAlgorithm>(seed);
  };
  CoverSolution reference;
  size_t reference_peak = 0;
  for (unsigned threads : {1u, 2u, 8u}) {
    size_t total_peak = 0;
    CoverSolution solution =
        BestOfRuns(factory, /*runs=*/5, /*seed=*/123, stream, &total_peak,
                   threads);
    if (threads == 1) {
      reference = solution;
      reference_peak = total_peak;
    } else {
      EXPECT_EQ(solution.cover, reference.cover) << "threads=" << threads;
      EXPECT_EQ(solution.certificate, reference.certificate)
          << "threads=" << threads;
      EXPECT_EQ(total_peak, reference_peak) << "threads=" << threads;
    }
  }
}

// A latch the overload tests use to wedge every worker at once.
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;

  void Open() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      open = true;
    }
    cv.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return open; });
  }
};

TEST(TaskQueue, RunsEveryAcceptedTask) {
  TaskQueue queue(4, 128);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    while (!queue.TrySubmit([&] { done.fetch_add(1); })) {
      std::this_thread::yield();
    }
  }
  queue.Drain();
  EXPECT_EQ(done.load(), 100);
}

TEST(TaskQueue, RefusesBeyondTheBoundInsteadOfQueueingUnboundedly) {
  Gate gate;
  TaskQueue queue(2, 3);
  std::atomic<int> done{0};
  // Wedge both workers, then fill the queue to its bound.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(queue.TrySubmit([&] {
      gate.Wait();
      done.fetch_add(1);
    }));
  }
  // Workers may not have dequeued their tasks yet; keep offering until
  // the queue reports exactly its bound in pending tasks.
  int accepted = 0;
  while (accepted < 3) {
    if (queue.TrySubmit([&] { done.fetch_add(1); })) ++accepted;
  }
  ASSERT_EQ(queue.Pending(), 3u);

  // The queue is full and both workers are busy: admission fails.
  EXPECT_FALSE(queue.TrySubmit([&] { done.fetch_add(1); }));
  EXPECT_GE(queue.Rejected(), 1u);

  gate.Open();
  queue.Drain();
  EXPECT_EQ(done.load(), 5);
}

TEST(TaskQueue, StopRefusesNewTasksButRunsAcceptedOnes) {
  Gate gate;
  TaskQueue queue(1, 8);
  std::atomic<int> done{0};
  ASSERT_TRUE(queue.TrySubmit([&] {
    gate.Wait();
    done.fetch_add(1);
  }));
  ASSERT_TRUE(queue.TrySubmit([&] { done.fetch_add(1); }));
  queue.Stop();
  EXPECT_FALSE(queue.TrySubmit([&] { done.fetch_add(1); }));
  gate.Open();
  queue.Drain();
  EXPECT_EQ(done.load(), 2);
}

TEST(TaskQueue, DestructorRunsTheBacklog) {
  std::atomic<int> done{0};
  {
    TaskQueue queue(2, 64);
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(queue.TrySubmit([&] { done.fetch_add(1); }));
    }
  }
  EXPECT_EQ(done.load(), 32);
}

TEST(TaskQueue, ManyProducersManyWorkers) {
  TaskQueue queue(4, 32);
  std::atomic<int> done{0};
  constexpr int kPerProducer = 200;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        // Full queue = shed; a real client would back off, the test
        // just spins until admitted so every task eventually runs.
        while (!queue.TrySubmit([&] { done.fetch_add(1); })) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  queue.Drain();
  EXPECT_EQ(done.load(), 4 * kPerProducer);
}

}  // namespace
}  // namespace setcover
