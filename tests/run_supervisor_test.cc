// Kill-and-resume equivalence — the acceptance bar for the run
// subsystem: for every registered algorithm, killing a supervised run
// at edge k and resuming from the checkpoint must finish with the
// bit-identical cover, certificate and meter reading of an
// uninterrupted run, on clean streams and on fault-injected ones.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "instance/generators.h"
#include "instance/validator.h"
#include "run/checkpoint.h"
#include "run/run_supervisor.h"
#include "stream/fault_injector.h"
#include "stream/orderings.h"
#include "stream/stream_file.h"
#include "util/rng.h"

namespace setcover {
namespace {

struct Fixture {
  SetCoverInstance instance;
  EdgeStream stream;
};

Fixture MakeFixture(uint64_t seed = 101) {
  Rng rng(seed);
  UniformRandomParams p;
  p.num_elements = 60;
  p.num_sets = 80;
  Fixture fixture{GenerateUniformRandom(p, rng), {}};
  fixture.stream = RandomOrderStream(fixture.instance, rng);
  return fixture;
}

std::string CheckpointPath(const std::string& tag) {
  std::string name = "supervisor_" + tag + ".sckp";
  for (char& c : name)
    if (c == '-') c = '_';
  return testing::TempDir() + name;
}

// Certificates that exist must be sound even when coverage is partial
// (dropped/corrupted records can legitimately lose elements).
void ExpectCertificateSound(const SetCoverInstance& inst,
                            const CoverSolution& solution,
                            const std::string& context) {
  ASSERT_EQ(solution.certificate.size(), inst.NumElements()) << context;
  std::vector<bool> in_cover(inst.NumSets(), false);
  for (SetId s : solution.cover) {
    ASSERT_LT(s, inst.NumSets()) << context;
    in_cover[s] = true;
  }
  for (ElementId u = 0; u < inst.NumElements(); ++u) {
    SetId w = solution.certificate[u];
    if (w == kNoSet) continue;
    ASSERT_LT(w, inst.NumSets()) << context;
    EXPECT_TRUE(in_cover[w]) << context;
    EXPECT_TRUE(inst.Contains(w, u)) << context;
  }
}

class SupervisorSweep : public testing::TestWithParam<std::string> {};

TEST_P(SupervisorSweep, KillAndResumeIsBitIdentical) {
  Fixture fixture = MakeFixture();
  const std::string path = CheckpointPath("clean_" + GetParam());

  // Uninterrupted reference run under the same supervisor.
  auto reference = MakeAlgorithmByName(GetParam(), {.seed = 21});
  VectorEdgeSource reference_source(fixture.stream);
  RunReport expected =
      RunSupervisor({}).Run(*reference, reference_source);
  ASSERT_TRUE(expected.completed) << expected.error;
  ASSERT_EQ(expected.edges_delivered, fixture.stream.size());

  for (uint64_t k : {uint64_t{1}, uint64_t{13}, uint64_t{64},
                     uint64_t{fixture.stream.size() - 1}}) {
    // Phase 1: run to edge k, checkpoint there, die.
    auto victim = MakeAlgorithmByName(GetParam(), {.seed = 21});
    VectorEdgeSource victim_source(fixture.stream);
    SupervisorOptions kill_options;
    kill_options.checkpoint_path = path;
    kill_options.checkpoint_every = k;
    kill_options.stop_after = k;
    RunReport killed =
        RunSupervisor(kill_options).Run(*victim, victim_source);
    ASSERT_FALSE(killed.completed) << GetParam() << " k=" << k;
    ASSERT_EQ(killed.checkpoints_written, 1u) << GetParam() << " k=" << k;

    // Phase 2: fresh object, fresh source, resume, replay the tail.
    auto revived = MakeAlgorithmByName(GetParam(), {.seed = 999});
    VectorEdgeSource revived_source(fixture.stream);
    SupervisorOptions resume_options;
    resume_options.checkpoint_path = path;
    resume_options.resume = true;
    RunReport resumed =
        RunSupervisor(resume_options).Run(*revived, revived_source);
    ASSERT_TRUE(resumed.completed)
        << GetParam() << " k=" << k << ": " << resumed.error;
    EXPECT_TRUE(resumed.resumed);
    EXPECT_EQ(resumed.resumed_at, k) << GetParam() << " k=" << k;
    EXPECT_EQ(resumed.edges_delivered, fixture.stream.size());

    EXPECT_EQ(resumed.solution.cover, expected.solution.cover)
        << GetParam() << " k=" << k;
    EXPECT_EQ(resumed.solution.certificate, expected.solution.certificate)
        << GetParam() << " k=" << k;
    EXPECT_EQ(revived->Meter().CurrentWords(),
              reference->Meter().CurrentWords())
        << GetParam() << " k=" << k;
  }
  std::remove(path.c_str());
}

TEST_P(SupervisorSweep, KillAndResumeUnderFaultsIsBitIdentical) {
  Fixture fixture = MakeFixture(211);
  const std::string path = CheckpointPath("faulty_" + GetParam());
  const FaultSchedule schedule = FaultSchedule::AllKinds(17, 0.04);

  auto reference = MakeAlgorithmByName(GetParam(), {.seed = 23});
  VectorEdgeSource reference_base(fixture.stream);
  FaultInjector reference_source(&reference_base, schedule);
  RunReport expected =
      RunSupervisor({}).Run(*reference, reference_source);
  ASSERT_TRUE(expected.completed) << expected.error;

  // Phase 1: checkpoint periodically, die mid-stream.
  auto victim = MakeAlgorithmByName(GetParam(), {.seed = 23});
  VectorEdgeSource victim_base(fixture.stream);
  FaultInjector victim_source(&victim_base, schedule);
  SupervisorOptions kill_options;
  kill_options.checkpoint_path = path;
  kill_options.checkpoint_every = 11;
  kill_options.stop_after = 60;
  RunReport killed =
      RunSupervisor(kill_options).Run(*victim, victim_source);
  ASSERT_FALSE(killed.completed) << GetParam();
  ASSERT_GT(killed.checkpoints_written, 0u) << GetParam();

  // Phase 2: resume over an identically-faulty fresh source.
  auto revived = MakeAlgorithmByName(GetParam(), {.seed = 999});
  VectorEdgeSource revived_base(fixture.stream);
  FaultInjector revived_source(&revived_base, schedule);
  SupervisorOptions resume_options;
  resume_options.checkpoint_path = path;
  resume_options.resume = true;
  RunReport resumed =
      RunSupervisor(resume_options).Run(*revived, revived_source);
  ASSERT_TRUE(resumed.completed) << GetParam() << ": " << resumed.error;
  EXPECT_TRUE(resumed.resumed);

  EXPECT_EQ(resumed.solution.cover, expected.solution.cover) << GetParam();
  EXPECT_EQ(resumed.solution.certificate, expected.solution.certificate)
      << GetParam();
  EXPECT_EQ(revived->Meter().CurrentWords(),
            reference->Meter().CurrentWords())
      << GetParam();
  EXPECT_EQ(resumed.edges_delivered, expected.edges_delivered)
      << GetParam();
  std::remove(path.c_str());
}

std::string SweepName(const testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name)
    if (c == '-') c = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, SupervisorSweep,
                         testing::ValuesIn(RegisteredAlgorithmNames()),
                         SweepName);

TEST(RunSupervisorTest, KillAndResumeOverAnOnDiskStreamFile) {
  // The deployment path end to end: stream file on disk, supervised run
  // killed mid-stream, a second process-simulating run resumes via
  // SeekToEdge and matches the uninterrupted result exactly.
  Rng rng(47);
  UniformRandomParams p;
  p.num_elements = 200;
  p.num_sets = 3000;
  p.min_set_size = 2;
  p.max_set_size = 5;
  auto inst = GenerateUniformRandom(p, rng);
  auto stream = RandomOrderStream(inst, rng);
  ASSERT_GT(stream.size(), size_t{4096}) << "want multiple v2 chunks";

  const std::string stream_path = testing::TempDir() + "supervisor.sces";
  const std::string ckpt_path = CheckpointPath("on_disk");
  ASSERT_TRUE(WriteStreamFile(stream, stream_path));

  std::string error;
  auto reference_source = StreamFileSource::Open(stream_path, &error);
  ASSERT_NE(reference_source, nullptr) << error;
  auto reference = MakeAlgorithmByName("random-order", {.seed = 31});
  RunReport expected =
      RunSupervisor({}).Run(*reference, *reference_source);
  ASSERT_TRUE(expected.completed) << expected.error;

  auto victim_source = StreamFileSource::Open(stream_path, &error);
  ASSERT_NE(victim_source, nullptr) << error;
  auto victim = MakeAlgorithmByName("random-order", {.seed = 31});
  SupervisorOptions kill_options;
  kill_options.checkpoint_path = ckpt_path;
  kill_options.checkpoint_every = 1000;
  kill_options.stop_after = 5500;  // dies inside the second chunk
  RunReport killed =
      RunSupervisor(kill_options).Run(*victim, *victim_source);
  ASSERT_FALSE(killed.completed);
  ASSERT_GT(killed.checkpoints_written, 0u);

  auto revived_source = StreamFileSource::Open(stream_path, &error);
  ASSERT_NE(revived_source, nullptr) << error;
  auto revived = MakeAlgorithmByName("random-order", {.seed = 777});
  SupervisorOptions resume_options;
  resume_options.checkpoint_path = ckpt_path;
  resume_options.resume = true;
  RunReport resumed =
      RunSupervisor(resume_options).Run(*revived, *revived_source);
  ASSERT_TRUE(resumed.completed) << resumed.error;
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.resumed_at, 5000u);

  EXPECT_EQ(resumed.solution.cover, expected.solution.cover);
  EXPECT_EQ(resumed.solution.certificate, expected.solution.certificate);
  EXPECT_EQ(revived->Meter().CurrentWords(),
            reference->Meter().CurrentWords());
  EXPECT_TRUE(ValidateSolution(inst, resumed.solution).ok);
  std::remove(stream_path.c_str());
  std::remove(ckpt_path.c_str());
}

TEST(RunSupervisorTest, KillAndResumeIsBitIdenticalAcrossFormats) {
  // The checkpoint coordinate is an edge index, so a run checkpointed
  // over one file format must resume identically over any other — and
  // the prefetch pipeline (whose seeks restart a worker thread) must
  // not perturb it either.
  Rng rng(61);
  UniformRandomParams p;
  p.num_elements = 200;
  p.num_sets = 3000;
  p.min_set_size = 2;
  p.max_set_size = 5;
  auto inst = GenerateUniformRandom(p, rng);
  auto stream = RandomOrderStream(inst, rng);
  ASSERT_GT(stream.size(), size_t{2} * 4096);

  std::string error;
  RunReport expected;
  {
    VectorEdgeSource source(stream);
    auto reference = MakeAlgorithmByName("random-order", {.seed = 31});
    expected = RunSupervisor({}).Run(*reference, source);
    ASSERT_TRUE(expected.completed) << expected.error;
  }

  for (StreamFormat format :
       {StreamFormat::kV1, StreamFormat::kV2, StreamFormat::kV3}) {
    for (bool prefetch : {false, true}) {
      const std::string label = "v" + std::to_string(uint32_t(format)) +
                                (prefetch ? "+prefetch" : "+sync");
      const std::string stream_path =
          testing::TempDir() + "formats_" + label + ".sces";
      const std::string ckpt_path = CheckpointPath(("fmt_" + label).c_str());
      ASSERT_TRUE(WriteStreamFile(stream, stream_path, format, &error))
          << error;
      StreamReadOptions read_options;
      read_options.prefetch = prefetch;

      auto victim_source =
          StreamFileSource::Open(stream_path, read_options, &error);
      ASSERT_NE(victim_source, nullptr) << error;
      auto victim = MakeAlgorithmByName("random-order", {.seed = 31});
      SupervisorOptions kill_options;
      kill_options.checkpoint_path = ckpt_path;
      kill_options.checkpoint_every = 1000;
      kill_options.stop_after = 5500;
      RunReport killed =
          RunSupervisor(kill_options).Run(*victim, *victim_source);
      ASSERT_FALSE(killed.completed) << label;
      ASSERT_GT(killed.checkpoints_written, 0u) << label;

      auto revived_source =
          StreamFileSource::Open(stream_path, read_options, &error);
      ASSERT_NE(revived_source, nullptr) << error;
      auto revived = MakeAlgorithmByName("random-order", {.seed = 777});
      SupervisorOptions resume_options;
      resume_options.checkpoint_path = ckpt_path;
      resume_options.resume = true;
      RunReport resumed =
          RunSupervisor(resume_options).Run(*revived, *revived_source);
      ASSERT_TRUE(resumed.completed) << label << ": " << resumed.error;
      EXPECT_TRUE(resumed.resumed) << label;
      EXPECT_EQ(resumed.resumed_at, 5000u) << label;

      EXPECT_EQ(resumed.solution.cover, expected.solution.cover) << label;
      EXPECT_EQ(resumed.solution.certificate, expected.solution.certificate)
          << label;
      EXPECT_EQ(resumed.edges_delivered, expected.edges_delivered) << label;
      std::remove(stream_path.c_str());
      std::remove(ckpt_path.c_str());
    }
  }
}

TEST(RunSupervisorTest, ChecksumFailedChunkDegradesTheRun) {
  // A stream file whose second chunk fails its CRC ends the stream
  // early; the supervised run must come back degraded (and count the
  // corrupt signal), never silently complete on a fifth of the data.
  Rng rng(53);
  UniformRandomParams p;
  p.num_elements = 150;
  p.num_sets = 2500;
  p.min_set_size = 2;
  p.max_set_size = 5;
  auto inst = GenerateUniformRandom(p, rng);
  auto stream = RandomOrderStream(inst, rng);
  ASSERT_GT(stream.size(), size_t{4096});

  const std::string path = testing::TempDir() + "degraded.sces";
  ASSERT_TRUE(WriteStreamFile(stream, path));
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 28 + 8 + 4096 * 8 + 8 + 100, SEEK_SET);  // chunk 1 payload
  int c = std::fgetc(f);
  std::fseek(f, -1, SEEK_CUR);
  std::fputc(c ^ 0x10, f);
  std::fclose(f);

  std::string error;
  auto source = StreamFileSource::Open(path, &error);
  ASSERT_NE(source, nullptr) << error;
  auto algorithm = MakeAlgorithmByName("kk", {.seed = 3});
  RunReport report = RunSupervisor({}).Run(*algorithm, *source);

  ASSERT_TRUE(report.completed) << report.error;
  EXPECT_TRUE(report.degraded);
  EXPECT_EQ(report.corrupt_records_skipped, 1u);
  EXPECT_EQ(report.edges_delivered, 4096u);
  ExpectCertificateSound(inst, report.solution, "checksum-degraded");
  std::remove(path.c_str());
}

TEST(RunSupervisorTest, SurvivesTransientFaultsWithBackoff) {
  Fixture fixture = MakeFixture();
  FaultSchedule schedule;
  schedule.seed = 9;
  schedule.transient_rate = 0.1;
  schedule.transient_failures = 2;

  VectorEdgeSource base(fixture.stream);
  FaultInjector source(&base, schedule);
  auto algorithm = MakeAlgorithmByName("kk", {.seed = 3});

  std::vector<uint64_t> slept;
  SupervisorOptions options;
  options.sleeper = [&slept](uint64_t us) { slept.push_back(us); };
  RunReport report = RunSupervisor(options).Run(*algorithm, source);

  ASSERT_TRUE(report.completed) << report.error;
  EXPECT_FALSE(report.degraded);
  EXPECT_GT(report.transient_retries, 0u);
  EXPECT_EQ(report.transient_retries, slept.size());
  EXPECT_EQ(report.edges_delivered, fixture.stream.size());
  EXPECT_TRUE(ValidateSolution(fixture.instance, report.solution).ok);
}

TEST(RunSupervisorTest, ExhaustedRetriesDegradeToCertifiedPartialCover) {
  Fixture fixture = MakeFixture();
  FaultSchedule schedule;
  schedule.seed = 9;
  schedule.transient_rate = 0.1;
  schedule.transient_failures = 1000;  // unrecoverable position

  VectorEdgeSource base(fixture.stream);
  FaultInjector source(&base, schedule);
  auto algorithm = MakeAlgorithmByName("kk", {.seed = 3});

  SupervisorOptions options;
  options.backoff.max_retries = 4;
  RunReport report = RunSupervisor(options).Run(*algorithm, source);

  ASSERT_TRUE(report.completed) << report.error;
  EXPECT_TRUE(report.degraded);
  EXPECT_LT(report.edges_delivered, fixture.stream.size());
  ExpectCertificateSound(fixture.instance, report.solution, "degraded");
}

TEST(RunSupervisorTest, CorruptRecordsAreSkippedAndCounted) {
  Fixture fixture = MakeFixture();
  FaultSchedule schedule;
  schedule.seed = 13;
  schedule.corrupt_rate = 0.05;

  VectorEdgeSource base(fixture.stream);
  FaultInjector source(&base, schedule);
  auto algorithm = MakeAlgorithmByName("kk", {.seed = 3});
  RunReport report = RunSupervisor({}).Run(*algorithm, source);

  ASSERT_TRUE(report.completed) << report.error;
  EXPECT_GT(report.corrupt_records_skipped, 0u);
  EXPECT_EQ(report.corrupt_records_skipped,
            source.DeliveredFaults(FaultKind::kCorrupt));
  EXPECT_EQ(report.edges_delivered,
            fixture.stream.size() - report.corrupt_records_skipped);
  ExpectCertificateSound(fixture.instance, report.solution, "corrupt");
}

TEST(RunSupervisorTest, RejectsCorruptedCheckpoint) {
  Fixture fixture = MakeFixture();
  const std::string path = CheckpointPath("reject_corrupt");

  auto victim = MakeAlgorithmByName("kk", {.seed = 3});
  VectorEdgeSource victim_source(fixture.stream);
  SupervisorOptions kill_options;
  kill_options.checkpoint_path = path;
  kill_options.checkpoint_every = 20;
  kill_options.stop_after = 20;
  RunSupervisor(kill_options).Run(*victim, victim_source);

  // Flip one byte mid-file; resume must refuse, not resume from garbage.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 40, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, 40, SEEK_SET);
  std::fputc(c ^ 0x01, f);
  std::fclose(f);

  auto revived = MakeAlgorithmByName("kk", {.seed = 3});
  VectorEdgeSource revived_source(fixture.stream);
  SupervisorOptions resume_options;
  resume_options.checkpoint_path = path;
  resume_options.resume = true;
  RunReport report =
      RunSupervisor(resume_options).Run(*revived, revived_source);
  EXPECT_FALSE(report.completed);
  EXPECT_FALSE(report.error.empty());
  std::remove(path.c_str());
}

TEST(RunSupervisorTest, RejectsCheckpointFromAnotherAlgorithm) {
  Fixture fixture = MakeFixture();
  const std::string path = CheckpointPath("reject_mismatch");

  auto victim = MakeAlgorithmByName("kk", {.seed = 3});
  VectorEdgeSource victim_source(fixture.stream);
  SupervisorOptions kill_options;
  kill_options.checkpoint_path = path;
  kill_options.checkpoint_every = 20;
  kill_options.stop_after = 20;
  RunSupervisor(kill_options).Run(*victim, victim_source);

  auto other = MakeAlgorithmByName("first-set-patching", {.seed = 3});
  VectorEdgeSource other_source(fixture.stream);
  SupervisorOptions resume_options;
  resume_options.checkpoint_path = path;
  resume_options.resume = true;
  RunReport report = RunSupervisor(resume_options).Run(*other, other_source);
  EXPECT_FALSE(report.completed);
  EXPECT_NE(report.error.find("kk"), std::string::npos);
  std::remove(path.c_str());
}

TEST(RunSupervisorTest, NeverCheckpointsWhileSourceOwesAReplay) {
  // With duplicates firing constantly and checkpoint_every = 1, every
  // odd delivery happens while the injector owes the second copy; the
  // supervisor must only write at true record boundaries.
  Fixture fixture = MakeFixture();
  const std::string path = CheckpointPath("pending_replay");
  FaultSchedule schedule;
  schedule.seed = 3;
  schedule.duplicate_rate = 1.0;

  VectorEdgeSource base(fixture.stream);
  FaultInjector source(&base, schedule);
  auto algorithm = MakeAlgorithmByName("kk", {.seed = 3});
  SupervisorOptions options;
  options.checkpoint_path = path;
  options.checkpoint_every = 1;
  RunReport report = RunSupervisor(options).Run(*algorithm, source);

  ASSERT_TRUE(report.completed) << report.error;
  EXPECT_EQ(report.edges_delivered, 2 * fixture.stream.size());
  // Exactly one checkpoint per record boundary, none mid-duplicate.
  EXPECT_EQ(report.checkpoints_written, fixture.stream.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace setcover
