// Stream-file format matrix (stream/stream_file.h): every format
// version × read backend must round-trip bit-exactly, report damage
// (bit flips, truncation, lost index) via flags instead of surfacing
// garbage, and v3 must actually be smaller than v2 on the Table-1
// workloads it exists to shrink.

#include "stream/stream_file.h"

#include <cstdio>
#include <fstream>
#include <unistd.h>

#include <gtest/gtest.h>

#include "instance/generators.h"
#include "stream/orderings.h"
#include "util/rng.h"

namespace setcover {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

EdgeStream SmallStream(StreamOrder order, uint64_t seed = 21) {
  Rng rng(seed);
  PlantedCoverParams params;
  params.num_elements = 128;
  params.num_sets = 3000;
  params.planted_cover_size = 4;
  auto instance = GeneratePlantedCover(params, rng);
  Rng order_rng(seed + 1);
  return OrderedStream(instance, order, order_rng);
}

uint64_t FileSize(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return static_cast<uint64_t>(in.tellg());
}

void TruncateFile(const std::string& path, uint64_t new_size) {
  ASSERT_EQ(truncate(path.c_str(), off_t(new_size)), 0);
}

void FlipByte(const std::string& path, uint64_t offset, uint8_t mask) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, long(offset), SEEK_SET), 0);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, long(offset), SEEK_SET), 0);
  std::fputc(c ^ mask, f);
  std::fclose(f);
}

struct ReadConfig {
  StreamFormat format;
  bool use_mmap;
  bool prefetch;
};

/// Parallel ctest runs each parameterized case in its own process, so
/// every config needs its own scratch file.
std::string ConfigPath(const char* base, const ReadConfig& config) {
  return TempPath(std::string(base) + "_v" +
                  std::to_string(uint32_t(config.format)) +
                  (config.use_mmap ? "m" : "s") +
                  (config.prefetch ? "p" : "n") + ".bin");
}

std::string ConfigName(const testing::TestParamInfo<ReadConfig>& info) {
  std::string name = "v" + std::to_string(uint32_t(info.param.format));
  name += info.param.use_mmap ? "_mmap" : "_stdio";
  name += info.param.prefetch ? "_prefetch" : "_sync";
  return name;
}

class FormatMatrix : public testing::TestWithParam<ReadConfig> {};

TEST_P(FormatMatrix, RoundTripsEveryOrdering) {
  const ReadConfig config = GetParam();
  StreamReadOptions options;
  options.use_mmap = config.use_mmap;
  options.prefetch = config.prefetch;
  for (StreamOrder order :
       {StreamOrder::kRandom, StreamOrder::kSetMajor,
        StreamOrder::kElementMajor, StreamOrder::kRoundRobinSets,
        StreamOrder::kLargeSetsLast}) {
    EdgeStream stream = SmallStream(order);
    std::string path =
        ConfigPath(("matrix_" + StreamOrderName(order)).c_str(), config);
    std::string error;
    ASSERT_TRUE(WriteStreamFile(stream, path, config.format, &error))
        << error;

    auto reader = OpenBatchEdgeReader(path, options, &error);
    ASSERT_NE(reader, nullptr) << error;
    EXPECT_EQ(reader->Version(), uint32_t(config.format));
    EXPECT_EQ(reader->Meta().stream_length, stream.meta.stream_length);

    Edge edge;
    size_t i = 0;
    while (reader->Next(&edge)) {
      ASSERT_LT(i, stream.edges.size());
      ASSERT_EQ(edge, stream.edges[i]) << "edge " << i;
      ++i;
    }
    EXPECT_EQ(i, stream.edges.size());
    EXPECT_FALSE(reader->Truncated());
    EXPECT_FALSE(reader->ChecksumFailed());
  }
}

TEST_P(FormatMatrix, BatchesConcatenateToTheStream) {
  const ReadConfig config = GetParam();
  StreamReadOptions options;
  options.use_mmap = config.use_mmap;
  options.prefetch = config.prefetch;
  EdgeStream stream = SmallStream(StreamOrder::kRandom);
  std::string path = ConfigPath("batches", config);
  std::string error;
  ASSERT_TRUE(WriteStreamFile(stream, path, config.format, &error)) << error;

  auto reader = OpenBatchEdgeReader(path, options, &error);
  ASSERT_NE(reader, nullptr) << error;
  std::vector<Edge> collected;
  for (std::span<const Edge> batch = reader->NextBatch(); !batch.empty();
       batch = reader->NextBatch()) {
    EXPECT_LE(batch.size(), kIngestBatchEdges);
    collected.insert(collected.end(), batch.begin(), batch.end());
  }
  EXPECT_EQ(collected, stream.edges);
}

TEST_P(FormatMatrix, SeeksLandExactly) {
  const ReadConfig config = GetParam();
  StreamReadOptions options;
  options.use_mmap = config.use_mmap;
  options.prefetch = config.prefetch;
  EdgeStream stream = SmallStream(StreamOrder::kRandom);
  ASSERT_GT(stream.size(), size_t{2} * 4096);
  std::string path = ConfigPath("seek_matrix", config);
  std::string error;
  ASSERT_TRUE(WriteStreamFile(stream, path, config.format, &error)) << error;

  auto reader = OpenBatchEdgeReader(path, options, &error);
  ASSERT_NE(reader, nullptr) << error;
  for (size_t index : {size_t{0}, size_t{4095}, size_t{4096}, size_t{6000},
                       stream.size() - 1, size_t{1}}) {
    ASSERT_TRUE(reader->SeekToEdge(index)) << index;
    EXPECT_EQ(reader->EdgesRead(), index);
    Edge edge;
    ASSERT_TRUE(reader->Next(&edge)) << index;
    EXPECT_EQ(edge, stream.edges[index]) << index;
  }
  ASSERT_TRUE(reader->SeekToEdge(stream.size()));
  Edge edge;
  EXPECT_FALSE(reader->Next(&edge));
  EXPECT_FALSE(reader->SeekToEdge(stream.size() + 1));
}

// A flipped payload bit must end the stream with ChecksumFailed() in
// the checksummed formats — the intact chunks before the damage are
// served, nothing at or past it is.
TEST_P(FormatMatrix, FlippedBitSurfacesAsChecksumFailure) {
  const ReadConfig config = GetParam();
  if (config.format == StreamFormat::kV1) return;  // v1 has no CRC
  StreamReadOptions options;
  options.use_mmap = config.use_mmap;
  options.prefetch = config.prefetch;
  EdgeStream stream = SmallStream(StreamOrder::kRandom);
  std::string path = ConfigPath("flip_matrix", config);
  std::string error;
  ASSERT_TRUE(WriteStreamFile(stream, path, config.format, &error)) << error;

  // Aim mid-file: inside some middle chunk's header or payload.
  FlipByte(path, FileSize(path) / 2, 0x10);

  auto reader = OpenBatchEdgeReader(path, options, &error);
  ASSERT_NE(reader, nullptr) << error;
  Edge edge;
  size_t surfaced = 0;
  while (reader->Next(&edge)) {
    ASSERT_EQ(edge, stream.edges[surfaced]) << "corrupt edge surfaced";
    ++surfaced;
  }
  EXPECT_LT(surfaced, stream.size());
  EXPECT_TRUE(reader->ChecksumFailed() || reader->Truncated());
  // Only whole verified chunks precede the damage.
  EXPECT_EQ(surfaced % 4096, 0u);
}

// Chopping the file mid-chunk must replay the intact prefix and set
// Truncated() — for v3 this also exercises the lost-index scan path.
TEST_P(FormatMatrix, TruncationReplaysOnlyThePrefix) {
  const ReadConfig config = GetParam();
  StreamReadOptions options;
  options.use_mmap = config.use_mmap;
  options.prefetch = config.prefetch;
  EdgeStream stream = SmallStream(StreamOrder::kRandom);
  std::string path = ConfigPath("trunc_matrix", config);
  std::string error;
  ASSERT_TRUE(WriteStreamFile(stream, path, config.format, &error)) << error;
  TruncateFile(path, FileSize(path) / 2);

  auto reader = OpenBatchEdgeReader(path, options, &error);
  ASSERT_NE(reader, nullptr) << error;
  Edge edge;
  size_t surfaced = 0;
  while (reader->Next(&edge)) {
    ASSERT_EQ(edge, stream.edges[surfaced]) << "wrong edge after truncation";
    ++surfaced;
  }
  EXPECT_LT(surfaced, stream.size());
  EXPECT_TRUE(reader->Truncated());
  EXPECT_FALSE(reader->ChecksumFailed());
}

// Satellite: seeking past the surviving region of a truncated file must
// report damage through the flags on the next read — never garbage.
TEST_P(FormatMatrix, SeekPastTruncationReportsFlagsNotGarbage) {
  const ReadConfig config = GetParam();
  if (config.format == StreamFormat::kV1) return;  // v1: no damage report
  StreamReadOptions options;
  options.use_mmap = config.use_mmap;
  options.prefetch = config.prefetch;
  EdgeStream stream = SmallStream(StreamOrder::kRandom);
  ASSERT_GT(stream.size(), size_t{2} * 4096);
  std::string path = ConfigPath("seek_trunc", config);
  std::string error;
  ASSERT_TRUE(WriteStreamFile(stream, path, config.format, &error)) << error;
  TruncateFile(path, FileSize(path) / 3);

  auto reader = OpenBatchEdgeReader(path, options, &error);
  ASSERT_NE(reader, nullptr) << error;
  ASSERT_TRUE(reader->SeekToEdge(stream.size() - 1));
  Edge edge;
  EXPECT_FALSE(reader->Next(&edge))
      << "read an edge from a region the file no longer contains";
  EXPECT_TRUE(reader->Truncated() || reader->ChecksumFailed());
}

INSTANTIATE_TEST_SUITE_P(
    Formats, FormatMatrix,
    testing::Values(
        ReadConfig{StreamFormat::kV1, true, false},
        ReadConfig{StreamFormat::kV1, false, false},
        ReadConfig{StreamFormat::kV2, true, false},
        ReadConfig{StreamFormat::kV2, false, false},
        ReadConfig{StreamFormat::kV2, true, true},
        ReadConfig{StreamFormat::kV3, true, false},
        ReadConfig{StreamFormat::kV3, false, false},
        ReadConfig{StreamFormat::kV3, true, true},
        ReadConfig{StreamFormat::kV3, false, true}),
    ConfigName);

TEST(StreamFormatTest, V3IsSmallerThanV2OnTable1Workloads) {
  // The Table-1 grid streams planted m ≈ n² instances element-major
  // (adversarial rows) and set-major (set-arrival row); those are the
  // files a long experiment sweep actually materializes.
  Rng rng(1256);
  PlantedCoverParams params;
  params.num_elements = 256;
  params.num_sets = 256 * 256;
  params.planted_cover_size = 4;
  auto instance = GeneratePlantedCover(params, rng);

  for (StreamOrder order :
       {StreamOrder::kElementMajor, StreamOrder::kSetMajor}) {
    Rng order_rng(2256);
    EdgeStream stream = OrderedStream(instance, order, order_rng);
    std::string v2_path = TempPath("ratio_v2.bin");
    std::string v3_path = TempPath("ratio_v3.bin");
    std::string error;
    ASSERT_TRUE(WriteStreamFile(stream, v2_path, StreamFormat::kV2, &error))
        << error;
    ASSERT_TRUE(WriteStreamFile(stream, v3_path, StreamFormat::kV3, &error))
        << error;
    const double ratio =
        double(FileSize(v2_path)) / double(FileSize(v3_path));
    EXPECT_GE(ratio, 1.8) << "order " << StreamOrderName(order)
                          << ": v2=" << FileSize(v2_path)
                          << " v3=" << FileSize(v3_path);
  }

  // Random arrival order compresses worst (no set-id locality); v3 must
  // still not be larger than v2.
  Rng order_rng(3256);
  EdgeStream stream =
      OrderedStream(instance, StreamOrder::kRandom, order_rng);
  std::string v2_path = TempPath("ratio_rand_v2.bin");
  std::string v3_path = TempPath("ratio_rand_v3.bin");
  std::string error;
  ASSERT_TRUE(WriteStreamFile(stream, v2_path, StreamFormat::kV2, &error));
  ASSERT_TRUE(WriteStreamFile(stream, v3_path, StreamFormat::kV3, &error));
  EXPECT_LT(FileSize(v3_path), FileSize(v2_path));
}

TEST(StreamFormatTest, V3CorruptFooterFallsBackToHeaderScan) {
  EdgeStream stream = SmallStream(StreamOrder::kRandom);
  std::string path = TempPath("badfooter.bin");
  std::string error;
  ASSERT_TRUE(WriteStreamFile(stream, path, StreamFormat::kV3, &error));
  FlipByte(path, FileSize(path) - 1, 0xFF);  // last byte of "SCIX"

  auto reader = StreamFileReader::Open(path, &error);
  ASSERT_NE(reader, nullptr) << error;
  Edge edge;
  size_t i = 0;
  while (reader->Next(&edge)) EXPECT_EQ(edge, stream.edges[i++]);
  EXPECT_EQ(i, stream.size());
  EXPECT_FALSE(reader->Truncated());
  EXPECT_FALSE(reader->ChecksumFailed());

  // Seeks still work off the scanned offsets.
  ASSERT_TRUE(reader->SeekToEdge(4097));
  ASSERT_TRUE(reader->Next(&edge));
  EXPECT_EQ(edge, stream.edges[4097]);
}

TEST(StreamFormatTest, V3LosingOnlyTheIndexLosesNoEdges) {
  EdgeStream stream = SmallStream(StreamOrder::kRandom);
  std::string path = TempPath("noindex.bin");
  std::string error;
  ASSERT_TRUE(WriteStreamFile(stream, path, StreamFormat::kV3, &error));
  const size_t chunks = (stream.size() + 4095) / 4096;
  TruncateFile(path, FileSize(path) - (chunks * 8 + 16));

  auto reader = StreamFileReader::Open(path, &error);
  ASSERT_NE(reader, nullptr) << error;
  Edge edge;
  size_t i = 0;
  while (reader->Next(&edge)) EXPECT_EQ(edge, stream.edges[i++]);
  EXPECT_EQ(i, stream.size());
  EXPECT_FALSE(reader->Truncated());
}

TEST(StreamFormatTest, V3EmptyStreamRoundTrips) {
  EdgeStream stream;
  stream.meta = {9, 4, 0};
  std::string path = TempPath("empty_v3.bin");
  std::string error;
  ASSERT_TRUE(WriteStreamFile(stream, path, StreamFormat::kV3, &error));
  for (bool prefetch : {false, true}) {
    StreamReadOptions options;
    options.prefetch = prefetch;
    auto reader = OpenBatchEdgeReader(path, options, &error);
    ASSERT_NE(reader, nullptr) << error;
    EXPECT_EQ(reader->Meta().num_sets, 9u);
    Edge edge;
    EXPECT_FALSE(reader->Next(&edge));
    EXPECT_TRUE(reader->NextBatch().empty());
  }
}

TEST(StreamFormatTest, WriterReportsErrnoDerivedErrors) {
  EdgeStream stream = SmallStream(StreamOrder::kRandom);
  std::string error;
  EXPECT_FALSE(WriteStreamFile(stream, "/nonexistent-dir/deep/s.bin",
                               StreamFormat::kV3, &error));
  EXPECT_NE(error.find("cannot create"), std::string::npos) << error;
  EXPECT_NE(error.find("No such file or directory"), std::string::npos)
      << error;
}

TEST(StreamFormatTest, ReaderReportsErrnoDerivedOpenErrors) {
  std::string error;
  EXPECT_EQ(StreamFileReader::Open("/nonexistent-dir/s.bin", &error),
            nullptr);
  EXPECT_NE(error.find("No such file or directory"), std::string::npos)
      << error;
}

TEST(StreamFormatTest, StdioBackendIsUsedWhenMmapIsDisabled) {
  EdgeStream stream = SmallStream(StreamOrder::kRandom);
  std::string path = TempPath("backend.bin");
  std::string error;
  ASSERT_TRUE(WriteStreamFile(stream, path, StreamFormat::kV3, &error));
  StreamReadOptions options;
  options.use_mmap = false;
  auto reader = StreamFileReader::Open(path, options, &error);
  ASSERT_NE(reader, nullptr) << error;
  EXPECT_FALSE(reader->UsesMmap());
  auto mapped = StreamFileReader::Open(path, &error);
  ASSERT_NE(mapped, nullptr) << error;
  EXPECT_TRUE(mapped->UsesMmap());
}

}  // namespace
}  // namespace setcover
