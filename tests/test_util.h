#ifndef SETCOVER_TESTS_TEST_UTIL_H_
#define SETCOVER_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include "core/streaming_algorithm.h"
#include "instance/instance.h"
#include "instance/validator.h"
#include "stream/orderings.h"
#include "util/rng.h"

namespace setcover {

/// Streams `instance` through `algorithm` in the given order and asserts
/// the result is a valid cover with a valid certificate. Returns the
/// solution for further assertions.
inline CoverSolution RunAndValidate(StreamingSetCoverAlgorithm& algorithm,
                                    const SetCoverInstance& instance,
                                    StreamOrder order, uint64_t stream_seed) {
  Rng rng(stream_seed);
  EdgeStream stream = OrderedStream(instance, order, rng);
  CoverSolution solution = RunStream(algorithm, stream);
  ValidationResult check = ValidateSolution(instance, solution);
  EXPECT_TRUE(check.ok) << algorithm.Name() << " on "
                        << StreamOrderName(order) << ": " << check.error;
  return solution;
}

}  // namespace setcover

#endif  // SETCOVER_TESTS_TEST_UTIL_H_
