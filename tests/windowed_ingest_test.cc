// Windowed (pipelined) ingest must be observationally invisible:
// for K ∈ {2, 8, 64}, a windowed session's finalize reply — cover,
// certificate, and every counter — is field-for-field identical to
// the strict K=1 session and the engine::Execute oracle, for a
// shardable and a non-shardable algorithm; a mid-window server
// Abort() + restart resyncs from the durable cursor and still
// converges bit-identically. scripts/check.sh runs this under ASan
// and TSan (the per-connection ticket ordering in the server is the
// contended piece).

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "engine/engine.h"
#include "instance/generators.h"
#include "server/client.h"
#include "server/server.h"
#include "stream/orderings.h"
#include "util/rng.h"

namespace setcover {
namespace server {
namespace {

struct Fixture {
  SetCoverInstance instance;
  EdgeStream stream;
};

Fixture MakeFixture(uint64_t seed) {
  Rng rng(seed);
  UniformRandomParams p;
  p.num_elements = 60;
  p.num_sets = 80;
  Fixture fixture{GenerateUniformRandom(p, rng), {}};
  fixture.stream = OrderedStream(fixture.instance, StreamOrder::kRandom, rng);
  return fixture;
}

ClientOptions FastClientOptions(uint64_t jitter_seed) {
  ClientOptions options;
  options.backoff.max_retries = 64;
  options.backoff.initial_delay_us = 1;
  options.backoff.max_delay_us = 50;
  options.backoff.jitter = 0.5;
  options.backoff.jitter_seed = jitter_seed;
  options.sleeper = [](uint64_t) {};
  return options;
}

OpenBody MakeOpen(const std::string& algorithm, uint64_t seed,
                  const Fixture& fixture) {
  OpenBody open;
  open.algorithm = algorithm;
  open.seed = seed;
  open.meta = fixture.stream.meta;
  return open;
}

/// One algorithm of each sharding class: windowing must not care.
std::vector<std::string> AlgorithmsUnderTest() {
  std::vector<std::string> picked;
  const std::vector<std::string> shardable = ShardableAlgorithmNames();
  if (!shardable.empty()) picked.push_back(shardable.front());
  for (const std::string& name : RegisteredAlgorithmNames()) {
    if (std::find(shardable.begin(), shardable.end(), name) ==
        shardable.end()) {
      picked.push_back(name);
      break;
    }
  }
  EXPECT_FALSE(picked.empty());
  return picked;
}

/// Every finalize-reply field the protocol exposes; "bit-identical"
/// means all of them, not just the cover.
void ExpectSameFinalize(const Message& got, const Message& want,
                        const std::string& label) {
  EXPECT_EQ(got.cover, want.cover) << label;
  EXPECT_EQ(got.certificate, want.certificate) << label;
  EXPECT_EQ(got.degraded, want.degraded) << label;
  EXPECT_EQ(got.edges_delivered, want.edges_delivered) << label;
  EXPECT_EQ(got.uncovered_elements, want.uncovered_elements) << label;
  EXPECT_EQ(got.current_words, want.current_words) << label;
  EXPECT_EQ(got.transient_retries, want.transient_retries) << label;
  EXPECT_EQ(got.corrupt_records_skipped, want.corrupt_records_skipped)
      << label;
  EXPECT_EQ(got.faults_survived, want.faults_survived) << label;
}

TEST(WindowedIngest, EveryWindowMatchesStrictAndOracle) {
  const Fixture fixture = MakeFixture(501);
  constexpr size_t kBatch = 48;

  LocalEndpoint endpoint;
  ServerOptions server_options;
  server_options.worker_threads = 3;  // ticket ordering is what's tested
  server_options.max_queue = 256;
  SessionServer server(server_options, endpoint.Listen());
  server.Start();

  uint64_t session_id = 900;
  for (const std::string& algorithm : AlgorithmsUnderTest()) {
    engine::RunConfig config;
    config.algorithm = algorithm;
    config.options.seed = 31;
    config.source = engine::SourceSpec::InMemory(fixture.stream);
    const engine::RunReport oracle = engine::Execute(config);
    ASSERT_TRUE(oracle.completed) << oracle.error;

    const OpenBody open = MakeOpen(algorithm, 31, fixture);
    auto dial = [&endpoint](std::string* error) {
      return endpoint.Connect(error);
    };

    Message strict_reply;
    std::string error;
    {
      SessionClient client(dial, FastClientOptions(1));
      ASSERT_TRUE(RunSessionToCompletion(&client, ++session_id, open,
                                         fixture.stream.edges, kBatch,
                                         &strict_reply, &error))
          << algorithm << ": " << error;
    }
    EXPECT_EQ(strict_reply.cover,
              std::vector<uint32_t>(oracle.solution.cover.begin(),
                                    oracle.solution.cover.end()))
        << algorithm;

    for (const size_t window : {size_t(2), size_t(8), size_t(64)}) {
      SessionClient client(dial, FastClientOptions(window));
      RunSessionOptions run;
      run.batch_edges = kBatch;
      run.window = window;
      uint64_t acks = 0;
      run.ingest_latency = [&acks](uint64_t) { ++acks; };
      Message windowed_reply;
      ASSERT_TRUE(RunSessionToCompletion(&client, ++session_id, open,
                                         fixture.stream.edges, run,
                                         &windowed_reply, &error))
          << algorithm << " K=" << window << ": " << error;
      ExpectSameFinalize(windowed_reply, strict_reply,
                         algorithm + " K=" + std::to_string(window));
      // Every batch's ack observed exactly once (no faults here).
      EXPECT_EQ(acks, (fixture.stream.edges.size() + kBatch - 1) / kBatch)
          << algorithm << " K=" << window;
    }
  }
  server.DrainAndStop();
}

// Kill the server (Abort: no drain — only periodic checkpoints
// survive) while windows are in flight, restart it on the same state
// dir, and require bit-identical convergence. The mid-window resync
// path — re-Open, learn the rolled-back cursor, refill — is the part
// under test.
TEST(WindowedIngest, MidWindowAbortAndRestartResyncsBitIdentical) {
  const Fixture fixture = MakeFixture(502);
  constexpr size_t kBatch = 16;
  constexpr size_t kWindow = 8;

  const std::string state_dir = testing::TempDir() + "windowed_state";
  std::filesystem::remove_all(state_dir);
  std::filesystem::create_directories(state_dir);

  LocalEndpoint endpoint;
  ServerOptions server_options;
  server_options.worker_threads = 3;
  server_options.max_queue = 128;
  server_options.state_dir = state_dir;

  uint64_t session_id = 950;
  for (const std::string& algorithm : AlgorithmsUnderTest()) {
    engine::RunConfig config;
    config.algorithm = algorithm;
    config.options.seed = 33;
    config.source = engine::SourceSpec::InMemory(fixture.stream);
    const engine::RunReport oracle = engine::Execute(config);
    ASSERT_TRUE(oracle.completed) << oracle.error;

    auto server = std::make_unique<SessionServer>(server_options,
                                                  endpoint.Listen());
    server->Start();

    OpenBody open = MakeOpen(algorithm, 33, fixture);
    open.checkpoint_every = 3;  // durable cursor trails the stream

    std::atomic<bool> done{false};
    Message reply;
    std::string error;
    bool completed = false;
    const uint64_t id = ++session_id;
    std::thread driver([&] {
      ClientOptions options = FastClientOptions(7);
      options.backoff.max_retries = 4000;  // ride out the outage
      options.sleeper = [](uint64_t) { std::this_thread::yield(); };
      SessionClient client(
          [&endpoint](std::string* dial_error) {
            return endpoint.Connect(dial_error);
          },
          options);
      RunSessionOptions run;
      run.batch_edges = kBatch;
      run.window = kWindow;
      for (int attempt = 0; attempt < 100 && !completed; ++attempt)
        completed = RunSessionToCompletion(&client, id, open,
                                           fixture.stream.edges, run,
                                           &reply, &error);
      done.store(true);
    });

    // Hard-kill mid-traffic, then restart on the same state.
    while (server->Stats().total_edges_delivered == 0 && !done.load())
      std::this_thread::yield();
    server->Abort();
    server = std::make_unique<SessionServer>(server_options,
                                             endpoint.Listen());
    server->Start();
    driver.join();
    ASSERT_TRUE(completed) << algorithm << ": " << error;

    EXPECT_EQ(reply.cover,
              std::vector<uint32_t>(oracle.solution.cover.begin(),
                                    oracle.solution.cover.end()))
        << algorithm;
    EXPECT_EQ(reply.certificate,
              std::vector<uint32_t>(oracle.solution.certificate.begin(),
                                    oracle.solution.certificate.end()))
        << algorithm;
    EXPECT_EQ(reply.edges_delivered, oracle.edges_delivered) << algorithm;
    server->DrainAndStop();
  }
}

}  // namespace
}  // namespace server
}  // namespace setcover
