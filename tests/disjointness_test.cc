#include "comm/disjointness.h"

#include <gtest/gtest.h>

namespace setcover {
namespace {

TEST(DisjointnessTest, DisjointInstanceSatisfiesPromise) {
  Rng rng(1);
  auto inst = GenerateDisjointInstance(4, 100, 20, rng);
  EXPECT_EQ(inst.num_parties, 4u);
  EXPECT_FALSE(inst.uniquely_intersecting);
  EXPECT_TRUE(VerifyPromise(inst));
  for (const auto& set : inst.party_sets) {
    EXPECT_EQ(set.size(), 20u);
    for (uint32_t v : set) EXPECT_LT(v, 100u);
  }
}

TEST(DisjointnessTest, IntersectingInstanceSatisfiesPromise) {
  Rng rng(2);
  auto inst = GenerateIntersectingInstance(5, 100, 15, rng);
  EXPECT_TRUE(inst.uniquely_intersecting);
  EXPECT_TRUE(VerifyPromise(inst));
  for (const auto& set : inst.party_sets) {
    EXPECT_EQ(set.size(), 15u);
    EXPECT_TRUE(std::binary_search(set.begin(), set.end(),
                                   inst.common_element));
  }
}

TEST(DisjointnessTest, PromiseVerifierCatchesViolations) {
  Rng rng(3);
  auto inst = GenerateDisjointInstance(3, 50, 10, rng);
  // Inject a shared element.
  inst.party_sets[0][0] = inst.party_sets[1][0];
  std::sort(inst.party_sets[0].begin(), inst.party_sets[0].end());
  EXPECT_FALSE(VerifyPromise(inst));
}

TEST(DisjointnessTest, PromiseVerifierCatchesWrongCommonElement) {
  Rng rng(4);
  auto inst = GenerateIntersectingInstance(3, 50, 10, rng);
  // Pretend the common element is something else.
  inst.common_element = (inst.common_element + 1) % 50;
  EXPECT_FALSE(VerifyPromise(inst));
}

TEST(DisjointnessTest, TwoPartiesMinimal) {
  Rng rng(5);
  auto a = GenerateDisjointInstance(2, 4, 2, rng);
  EXPECT_TRUE(VerifyPromise(a));
  auto b = GenerateIntersectingInstance(2, 4, 2, rng);
  EXPECT_TRUE(VerifyPromise(b));
}

TEST(DisjointnessTest, PerPartyOneIntersecting) {
  // per_party = 1 means every party holds exactly the common element.
  Rng rng(6);
  auto inst = GenerateIntersectingInstance(3, 10, 1, rng);
  EXPECT_TRUE(VerifyPromise(inst));
  for (const auto& set : inst.party_sets) {
    ASSERT_EQ(set.size(), 1u);
    EXPECT_EQ(set[0], inst.common_element);
  }
}

TEST(DisjointnessDeathTest, RejectsOversizedParties) {
  Rng rng(7);
  EXPECT_DEATH(GenerateDisjointInstance(4, 10, 5, rng), "universe");
}

}  // namespace
}  // namespace setcover
