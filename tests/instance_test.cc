#include "instance/instance.h"

#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "instance/generators.h"
#include "util/rng.h"

namespace setcover {
namespace {

TEST(InstanceTest, FromSetsBasics) {
  auto inst = SetCoverInstance::FromSets(5, {{0, 1, 2}, {2, 3}, {4}});
  EXPECT_EQ(inst.NumElements(), 5u);
  EXPECT_EQ(inst.NumSets(), 3u);
  EXPECT_EQ(inst.NumEdges(), 6u);
}

TEST(InstanceTest, SetsAreSortedAndDeduplicated) {
  auto inst = SetCoverInstance::FromSets(5, {{3, 1, 3, 1, 0}});
  auto set = inst.Set(0);
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set[0], 0u);
  EXPECT_EQ(set[1], 1u);
  EXPECT_EQ(set[2], 3u);
  EXPECT_EQ(inst.NumEdges(), 3u);
}

TEST(InstanceTest, Contains) {
  auto inst = SetCoverInstance::FromSets(6, {{0, 2, 4}, {1, 5}});
  EXPECT_TRUE(inst.Contains(0, 0));
  EXPECT_TRUE(inst.Contains(0, 4));
  EXPECT_FALSE(inst.Contains(0, 1));
  EXPECT_TRUE(inst.Contains(1, 5));
  EXPECT_FALSE(inst.Contains(1, 4));
}

TEST(InstanceTest, ElementDegrees) {
  auto inst = SetCoverInstance::FromSets(4, {{0, 1}, {1, 2}, {1}});
  auto deg = inst.ElementDegrees();
  ASSERT_EQ(deg.size(), 4u);
  EXPECT_EQ(deg[0], 1u);
  EXPECT_EQ(deg[1], 3u);
  EXPECT_EQ(deg[2], 1u);
  EXPECT_EQ(deg[3], 0u);
}

TEST(InstanceTest, Feasibility) {
  EXPECT_TRUE(
      SetCoverInstance::FromSets(3, {{0, 1}, {2}}).IsFeasible());
  EXPECT_FALSE(
      SetCoverInstance::FromSets(3, {{0, 1}}).IsFeasible());
}

TEST(InstanceTest, EmptySetsAllowed) {
  auto inst = SetCoverInstance::FromSets(2, {{}, {0, 1}});
  EXPECT_EQ(inst.Set(0).size(), 0u);
  EXPECT_TRUE(inst.IsFeasible());
}

TEST(InstanceTest, PlantedCoverRoundTrip) {
  auto inst = SetCoverInstance::FromSets(2, {{0}, {1}, {0, 1}});
  EXPECT_TRUE(inst.PlantedCover().empty());
  inst.SetPlantedCover({2});
  ASSERT_EQ(inst.PlantedCover().size(), 1u);
  EXPECT_EQ(inst.PlantedCover()[0], 2u);
}

TEST(InstanceTest, SingleElementUniverse) {
  auto inst = SetCoverInstance::FromSets(1, {{0}});
  EXPECT_EQ(inst.NumElements(), 1u);
  EXPECT_TRUE(inst.IsFeasible());
}

TEST(InstanceDeathTest, OutOfRangeElementAborts) {
  EXPECT_DEATH(SetCoverInstance::FromSets(3, {{0, 3}}), "out of range");
}

TEST(InstanceDeathTest, FromEdgesOutOfRangeAborts) {
  std::vector<Edge> bad_element = {{0, 5}};
  EXPECT_DEATH(SetCoverInstance::FromEdges(3, 2, bad_element),
               "out of range");
  std::vector<Edge> bad_set = {{2, 0}};
  EXPECT_DEATH(SetCoverInstance::FromEdges(3, 2, bad_set), "out of range");
}

// ---- CSR round-trip: the flat offsets/elements arena must present the
// same logical instance as the vector-of-vectors input.

TEST(InstanceCsrTest, SpansAreSortedDedupedAndContiguous) {
  Rng rng(909);
  UniformRandomParams params;
  params.num_elements = 300;
  params.num_sets = 90;
  params.max_set_size = 40;
  auto inst = GenerateUniformRandom(params, rng);

  size_t total = 0;
  for (SetId s = 0; s < inst.NumSets(); ++s) {
    auto set = inst.Set(s);
    EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
    EXPECT_EQ(std::adjacent_find(set.begin(), set.end()), set.end());
    for (ElementId u : set) EXPECT_LT(u, inst.NumElements());
    // Spans tile the shared arena back-to-back.
    if (s + 1 < inst.NumSets()) {
      EXPECT_EQ(set.data() + set.size(), inst.Set(s + 1).data());
    }
    total += set.size();
  }
  EXPECT_EQ(total, inst.NumEdges());
}

TEST(InstanceCsrTest, ElementSetsMatchesSetMembership) {
  Rng rng(808);
  ZipfParams params;
  params.num_elements = 150;
  params.num_sets = 60;
  params.max_set_size = 25;
  auto inst = GenerateZipf(params, rng);

  // Rebuild element -> sets from the forward CSR and compare with the
  // inverse CSR, entry for entry (both are sorted ascending).
  std::vector<std::vector<SetId>> expect(inst.NumElements());
  for (SetId s = 0; s < inst.NumSets(); ++s) {
    for (ElementId u : inst.Set(s)) expect[u].push_back(s);
  }
  auto degrees = inst.ElementDegrees();
  size_t total = 0;
  for (ElementId u = 0; u < inst.NumElements(); ++u) {
    auto sets = inst.ElementSets(u);
    ASSERT_EQ(sets.size(), expect[u].size()) << "element " << u;
    EXPECT_TRUE(std::equal(sets.begin(), sets.end(), expect[u].begin()))
        << "element " << u;
    EXPECT_EQ(inst.ElementDegree(u), expect[u].size());
    EXPECT_EQ(degrees[u], expect[u].size());
    total += sets.size();
  }
  EXPECT_EQ(total, inst.NumEdges());
}

TEST(InstanceCsrTest, FromEdgesEqualsFromSets) {
  Rng rng(111);
  UniformRandomParams params;
  params.num_elements = 120;
  params.num_sets = 50;
  params.max_set_size = 16;
  auto reference = GenerateUniformRandom(params, rng);

  // Shuffle the edge list hard: FromEdges must not depend on arrival
  // order (duplicates included).
  std::vector<Edge> edges;
  for (SetId s = 0; s < reference.NumSets(); ++s) {
    for (ElementId u : reference.Set(s)) {
      edges.push_back({s, u});
      if ((s + u) % 3 == 0) edges.push_back({s, u});  // duplicate edges
    }
  }
  Rng shuffle_rng(222);
  for (size_t i = edges.size(); i > 1; --i) {
    std::swap(edges[i - 1], edges[shuffle_rng.UniformInt(i)]);
  }

  auto rebuilt = SetCoverInstance::FromEdges(reference.NumElements(),
                                             reference.NumSets(), edges);
  ASSERT_EQ(rebuilt.NumSets(), reference.NumSets());
  ASSERT_EQ(rebuilt.NumElements(), reference.NumElements());
  EXPECT_EQ(rebuilt.NumEdges(), reference.NumEdges());
  for (SetId s = 0; s < reference.NumSets(); ++s) {
    auto a = rebuilt.Set(s);
    auto b = reference.Set(s);
    ASSERT_EQ(a.size(), b.size()) << "set " << s;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << "set " << s;
  }
  for (ElementId u = 0; u < reference.NumElements(); ++u) {
    auto a = rebuilt.ElementSets(u);
    auto b = reference.ElementSets(u);
    ASSERT_EQ(a.size(), b.size()) << "element " << u;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()))
        << "element " << u;
  }
}

TEST(InstanceCsrTest, FromEdgesWithTrailingEmptySets) {
  // num_sets larger than any set id in the edge list: trailing sets are
  // empty, not dropped.
  std::vector<Edge> edges = {{1, 0}, {1, 2}, {0, 1}};
  auto inst = SetCoverInstance::FromEdges(3, 5, edges);
  EXPECT_EQ(inst.NumSets(), 5u);
  EXPECT_EQ(inst.NumEdges(), 3u);
  EXPECT_EQ(inst.Set(0).size(), 1u);
  EXPECT_EQ(inst.Set(1).size(), 2u);
  for (SetId s = 2; s < 5; ++s) EXPECT_EQ(inst.Set(s).size(), 0u);
}

TEST(InstanceCsrTest, MoveKeepsSpansValid) {
  auto inst = SetCoverInstance::FromSets(4, {{0, 1}, {2, 3}});
  SetCoverInstance moved = std::move(inst);
  auto set = moved.Set(1);
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set[0], 2u);
  EXPECT_EQ(set[1], 3u);
  EXPECT_EQ(moved.ElementSets(3).size(), 1u);
}

}  // namespace
}  // namespace setcover
