#include "instance/instance.h"

#include <vector>

#include <gtest/gtest.h>

namespace setcover {
namespace {

TEST(InstanceTest, FromSetsBasics) {
  auto inst = SetCoverInstance::FromSets(5, {{0, 1, 2}, {2, 3}, {4}});
  EXPECT_EQ(inst.NumElements(), 5u);
  EXPECT_EQ(inst.NumSets(), 3u);
  EXPECT_EQ(inst.NumEdges(), 6u);
}

TEST(InstanceTest, SetsAreSortedAndDeduplicated) {
  auto inst = SetCoverInstance::FromSets(5, {{3, 1, 3, 1, 0}});
  auto set = inst.Set(0);
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set[0], 0u);
  EXPECT_EQ(set[1], 1u);
  EXPECT_EQ(set[2], 3u);
  EXPECT_EQ(inst.NumEdges(), 3u);
}

TEST(InstanceTest, Contains) {
  auto inst = SetCoverInstance::FromSets(6, {{0, 2, 4}, {1, 5}});
  EXPECT_TRUE(inst.Contains(0, 0));
  EXPECT_TRUE(inst.Contains(0, 4));
  EXPECT_FALSE(inst.Contains(0, 1));
  EXPECT_TRUE(inst.Contains(1, 5));
  EXPECT_FALSE(inst.Contains(1, 4));
}

TEST(InstanceTest, ElementDegrees) {
  auto inst = SetCoverInstance::FromSets(4, {{0, 1}, {1, 2}, {1}});
  auto deg = inst.ElementDegrees();
  ASSERT_EQ(deg.size(), 4u);
  EXPECT_EQ(deg[0], 1u);
  EXPECT_EQ(deg[1], 3u);
  EXPECT_EQ(deg[2], 1u);
  EXPECT_EQ(deg[3], 0u);
}

TEST(InstanceTest, Feasibility) {
  EXPECT_TRUE(
      SetCoverInstance::FromSets(3, {{0, 1}, {2}}).IsFeasible());
  EXPECT_FALSE(
      SetCoverInstance::FromSets(3, {{0, 1}}).IsFeasible());
}

TEST(InstanceTest, EmptySetsAllowed) {
  auto inst = SetCoverInstance::FromSets(2, {{}, {0, 1}});
  EXPECT_EQ(inst.Set(0).size(), 0u);
  EXPECT_TRUE(inst.IsFeasible());
}

TEST(InstanceTest, PlantedCoverRoundTrip) {
  auto inst = SetCoverInstance::FromSets(2, {{0}, {1}, {0, 1}});
  EXPECT_TRUE(inst.PlantedCover().empty());
  inst.SetPlantedCover({2});
  ASSERT_EQ(inst.PlantedCover().size(), 1u);
  EXPECT_EQ(inst.PlantedCover()[0], 2u);
}

TEST(InstanceTest, SingleElementUniverse) {
  auto inst = SetCoverInstance::FromSets(1, {{0}});
  EXPECT_EQ(inst.NumElements(), 1u);
  EXPECT_TRUE(inst.IsFeasible());
}

TEST(InstanceDeathTest, OutOfRangeElementAborts) {
  EXPECT_DEATH(SetCoverInstance::FromSets(3, {{0, 3}}), "out of range");
}

}  // namespace
}  // namespace setcover
