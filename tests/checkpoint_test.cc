#include "run/checkpoint.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/crc32.h"

namespace setcover {
namespace {

Checkpoint SampleCheckpoint() {
  Checkpoint checkpoint;
  checkpoint.algorithm_name = "random-order-sketch";
  checkpoint.meta.num_sets = 120;
  checkpoint.meta.num_elements = 80;
  checkpoint.meta.stream_length = 4096;
  checkpoint.stream_position = 1234;
  checkpoint.edges_delivered = 1200;
  checkpoint.transient_retries = 7;
  checkpoint.corrupt_skipped = 3;
  checkpoint.faults_survived = 10;
  checkpoint.session_sequence = 42;
  for (uint64_t i = 0; i < 500; ++i)
    checkpoint.state_words.push_back(i * 0x9E3779B97F4A7C15ULL);
  return checkpoint;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + name;
}

TEST(CheckpointTest, RoundTripsEveryField) {
  const std::string path = TempPath("ckpt_roundtrip.sckp");
  Checkpoint original = SampleCheckpoint();
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(original, path, &error)) << error;

  auto loaded = LoadCheckpoint(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->algorithm_name, original.algorithm_name);
  EXPECT_EQ(loaded->meta.num_sets, original.meta.num_sets);
  EXPECT_EQ(loaded->meta.num_elements, original.meta.num_elements);
  EXPECT_EQ(loaded->meta.stream_length, original.meta.stream_length);
  EXPECT_EQ(loaded->stream_position, original.stream_position);
  EXPECT_EQ(loaded->edges_delivered, original.edges_delivered);
  EXPECT_EQ(loaded->transient_retries, original.transient_retries);
  EXPECT_EQ(loaded->corrupt_skipped, original.corrupt_skipped);
  EXPECT_EQ(loaded->faults_survived, original.faults_survived);
  EXPECT_EQ(loaded->session_sequence, original.session_sequence);
  EXPECT_EQ(loaded->state_words, original.state_words);
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadsVersion1FilesWithZeroSessionSequence) {
  // Hand-assemble a v1 file (the pre-session layout, no
  // session_sequence field) and check it still loads.
  auto put32 = [](std::vector<uint8_t>* out, uint32_t v) {
    for (int i = 0; i < 4; ++i) out->push_back(uint8_t(v >> (8 * i)));
  };
  auto put64 = [](std::vector<uint8_t>* out, uint64_t v) {
    for (int i = 0; i < 8; ++i) out->push_back(uint8_t(v >> (8 * i)));
  };
  const std::string name = "kk";
  std::vector<uint8_t> bytes;
  put32(&bytes, 0x504B4353u);  // "SCKP"
  put32(&bytes, 1);            // version 1
  put32(&bytes, uint32_t(name.size()));
  for (char c : name) bytes.push_back(uint8_t(c));
  put32(&bytes, 10);   // m
  put32(&bytes, 20);   // n
  put64(&bytes, 30);   // N
  put64(&bytes, 5);    // stream_position
  put64(&bytes, 5);    // edges_delivered
  put64(&bytes, 1);    // transient_retries
  put64(&bytes, 2);    // corrupt_skipped
  put64(&bytes, 3);    // faults_survived
  put64(&bytes, 2);    // state_len
  put64(&bytes, 77);
  put64(&bytes, 88);
  put32(&bytes, Crc32(bytes.data() + 4, bytes.size() - 4));

  const std::string path = TempPath("ckpt_v1.sckp");
  std::FILE* out = std::fopen(path.c_str(), "wb");
  ASSERT_NE(out, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), out), bytes.size());
  std::fclose(out);

  std::string error;
  auto loaded = LoadCheckpoint(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->algorithm_name, "kk");
  EXPECT_EQ(loaded->meta.num_sets, 10u);
  EXPECT_EQ(loaded->session_sequence, 0u);
  EXPECT_EQ(loaded->state_words, (std::vector<uint64_t>{77, 88}));
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsUnknownFutureVersion) {
  const std::string path = TempPath("ckpt_future.sckp");
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(SampleCheckpoint(), path, &error)) << error;
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  // Overwrite the version field (bytes 4..7) with 99 and re-CRC is not
  // even needed: a bad version must fail before the CRC could pass.
  std::fseek(f, 4, SEEK_SET);
  uint32_t future = 99;
  ASSERT_EQ(std::fwrite(&future, 1, 4, f), 4u);
  std::fclose(f);
  EXPECT_FALSE(LoadCheckpoint(path, &error).has_value());
  std::remove(path.c_str());
}

TEST(CheckpointTest, SaveLeavesNoTempFileBehind) {
  const std::string path = TempPath("ckpt_atomic.sckp");
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(SampleCheckpoint(), path, &error)) << error;
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsEveryCorruptedByte) {
  const std::string path = TempPath("ckpt_corrupt.sckp");
  std::string error;
  Checkpoint small = SampleCheckpoint();
  small.state_words.resize(8);
  ASSERT_TRUE(SaveCheckpoint(small, path, &error)) << error;

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::vector<uint8_t> bytes(1 << 16);
  bytes.resize(std::fread(bytes.data(), 1, bytes.size(), f));
  std::fclose(f);
  ASSERT_GT(bytes.size(), 12u);

  for (size_t i = 0; i < bytes.size(); ++i) {
    std::vector<uint8_t> damaged = bytes;
    damaged[i] ^= 0x20;
    std::FILE* out = std::fopen(path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    ASSERT_EQ(std::fwrite(damaged.data(), 1, damaged.size(), out),
              damaged.size());
    std::fclose(out);
    EXPECT_FALSE(LoadCheckpoint(path, &error).has_value())
        << "byte " << i << " corruption went undetected";
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsTruncation) {
  const std::string path = TempPath("ckpt_truncated.sckp");
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(SampleCheckpoint(), path, &error)) << error;

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::vector<uint8_t> bytes(1 << 20);
  bytes.resize(std::fread(bytes.data(), 1, bytes.size(), f));
  std::fclose(f);

  for (size_t keep : {size_t{0}, size_t{4}, size_t{11}, bytes.size() / 2,
                      bytes.size() - 1}) {
    std::FILE* out = std::fopen(path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, keep, out), keep);
    std::fclose(out);
    EXPECT_FALSE(LoadCheckpoint(path, &error).has_value())
        << "truncation to " << keep << " bytes went undetected";
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileIsAnError) {
  std::string error;
  EXPECT_FALSE(
      LoadCheckpoint(TempPath("ckpt_does_not_exist.sckp"), &error)
          .has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace setcover
