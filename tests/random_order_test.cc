#include "core/random_order.h"

#include <cmath>

#include <gtest/gtest.h>

#include "instance/generators.h"
#include "tests/test_util.h"

namespace setcover {
namespace {

SetCoverInstance PlantedInstance(uint32_t n, uint32_t m, uint32_t opt,
                                 uint64_t seed) {
  Rng rng(seed);
  PlantedCoverParams params;
  params.num_elements = n;
  params.num_sets = m;
  params.planted_cover_size = opt;
  params.decoy_max_size = 4;
  return GeneratePlantedCover(params, rng);
}

TEST(RandomOrderTest, ValidCoverOnRandomOrder) {
  auto inst = PlantedInstance(100, 1000, 4, 1);
  RandomOrderAlgorithm algorithm(5);
  RunAndValidate(algorithm, inst, StreamOrder::kRandom, 2);
}

TEST(RandomOrderTest, CorrectnessHoldsEvenOnAdversarialOrders) {
  // The guarantee needs random order; *correctness* must not.
  auto inst = PlantedInstance(64, 256, 3, 2);
  for (StreamOrder order :
       {StreamOrder::kSetMajor, StreamOrder::kElementMajor,
        StreamOrder::kRoundRobinSets, StreamOrder::kLargeSetsLast}) {
    RandomOrderAlgorithm algorithm(7);
    RunAndValidate(algorithm, inst, order, 3);
  }
}

TEST(RandomOrderTest, DeterministicGivenSeed) {
  auto inst = PlantedInstance(80, 400, 3, 3);
  RandomOrderAlgorithm a(11), b(11);
  auto sa = RunAndValidate(a, inst, StreamOrder::kRandom, 4);
  auto sb = RunAndValidate(b, inst, StreamOrder::kRandom, 4);
  EXPECT_EQ(sa.cover, sb.cover);
  EXPECT_EQ(sa.certificate, sb.certificate);
}

TEST(RandomOrderTest, ScheduleRespectsBatching) {
  auto inst = PlantedInstance(256, 1024, 4, 4);
  RandomOrderAlgorithm algorithm(1);
  Rng rng(5);
  auto stream = RandomOrderStream(inst, rng);
  algorithm.Begin(stream.meta);
  EXPECT_EQ(algorithm.NumBatches(), 16u);  // √256
  EXPECT_GE(algorithm.NumAlgorithms(), 1u);
  EXPECT_GE(algorithm.NumEpochs(), 1u);
  // ℓ_i doubles with i.
  for (uint32_t i = 2; i <= algorithm.NumAlgorithms(); ++i) {
    EXPECT_GE(algorithm.SubepochLength(i),
              2 * algorithm.SubepochLength(i - 1) - 2);
  }
  for (const Edge& e : stream.edges) algorithm.ProcessEdge(e);
  auto sol = algorithm.Finalize();
  EXPECT_TRUE(ValidateSolution(inst, sol).ok);
}

TEST(RandomOrderTest, SpaceIsSublinearInM) {
  // Õ(m/√n) + Õ(n): with m = n² the peak must sit far below m.
  const uint32_t n = 256;
  const uint32_t m = n * n;  // 65536
  auto inst = PlantedInstance(n, m, 4, 5);
  RandomOrderAlgorithm algorithm(3);
  RunAndValidate(algorithm, inst, StreamOrder::kRandom, 6);
  size_t peak = algorithm.Meter().PeakWords();
  EXPECT_LT(peak, size_t(m) / 2) << algorithm.Meter().BreakdownString();
}

TEST(RandomOrderTest, UsesLessSpaceThanKkWouldNeed) {
  // The KK algorithm stores m degree counters; Algorithm 1's whole point
  // is to beat that. Compare against m directly.
  const uint32_t n = 1024;
  const uint32_t m = 131072;  // m = 128·n = Θ(n²) is out of reach here;
                              // even m ≫ n·√n shows the effect
  auto inst = PlantedInstance(n, m, 8, 6);
  RandomOrderAlgorithm algorithm(4);
  RunAndValidate(algorithm, inst, StreamOrder::kRandom, 7);
  EXPECT_LT(algorithm.Meter().PeakWords(), size_t(m) / 4)
      << algorithm.Meter().BreakdownString();
}

TEST(RandomOrderTest, ApproxBoundedOnRandomOrder) {
  const uint32_t n = 256;
  auto inst = PlantedInstance(n, 4096, 4, 7);
  RandomOrderAlgorithm algorithm(9);
  auto sol = RunAndValidate(algorithm, inst, StreamOrder::kRandom, 8);
  // Õ(√n) with generous slack for the poly-log factors.
  double bound = 16.0 * std::sqrt(double(n)) * std::log2(4096.0);
  EXPECT_LE(double(sol.cover.size()),
            bound * double(inst.PlantedCover().size()));
}

TEST(RandomOrderTest, StatsAreCoherent) {
  auto inst = PlantedInstance(256, 4096, 4, 8);
  RandomOrderAlgorithm algorithm(13);
  RunAndValidate(algorithm, inst, StreamOrder::kRandom, 9);
  const auto& stats = algorithm.Stats();
  size_t added = 0;
  for (const auto& epoch : stats.epochs) {
    EXPECT_LE(epoch.added_to_solution, epoch.special_sets);
    EXPECT_LE(epoch.sampled_for_tracking, epoch.special_sets);
    added += epoch.added_to_solution;
  }
  EXPECT_EQ(added, stats.additions.size());
}

TEST(RandomOrderTest, PaperFaithfulModeStillProducesValidCovers) {
  // At laptop scale the literal thresholds never fire; the run must
  // degrade gracefully to sampling + patching.
  auto inst = PlantedInstance(100, 500, 4, 9);
  RandomOrderAlgorithm algorithm(15, RandomOrderParams::PaperFaithful());
  RunAndValidate(algorithm, inst, StreamOrder::kRandom, 10);
}

TEST(RandomOrderTest, TinyInstances) {
  auto one = SetCoverInstance::FromSets(1, {{0}});
  RandomOrderAlgorithm a(1);
  EXPECT_EQ(RunAndValidate(a, one, StreamOrder::kSetMajor, 1).cover.size(),
            1u);

  auto two = SetCoverInstance::FromSets(2, {{0}, {1}});
  RandomOrderAlgorithm b(2);
  EXPECT_EQ(RunAndValidate(b, two, StreamOrder::kRandom, 2).cover.size(),
            2u);
}

TEST(RandomOrderTest, SurvivesWrongStreamLengthGuess) {
  // Robustness: N in the metadata differs from the true stream length.
  auto inst = PlantedInstance(64, 512, 4, 10);
  Rng rng(11);
  auto stream = RandomOrderStream(inst, rng);

  for (double factor : {0.25, 4.0}) {
    RandomOrderAlgorithm algorithm(17);
    StreamMetadata meta = stream.meta;
    meta.stream_length =
        std::max<size_t>(1, size_t(double(stream.meta.stream_length) * factor));
    algorithm.Begin(meta);
    for (const Edge& e : stream.edges) algorithm.ProcessEdge(e);
    auto sol = algorithm.Finalize();
    auto check = ValidateSolution(inst, sol);
    EXPECT_TRUE(check.ok) << "factor " << factor << ": " << check.error;
  }
}

TEST(RandomOrderTest, ExplicitScheduleOverrides) {
  auto inst = PlantedInstance(100, 400, 4, 11);
  RandomOrderParams params;
  params.num_algorithms = 2;
  params.num_epochs = 3;
  RandomOrderAlgorithm algorithm(19, params);
  Rng rng(12);
  auto stream = RandomOrderStream(inst, rng);
  algorithm.Begin(stream.meta);
  EXPECT_EQ(algorithm.NumAlgorithms(), 2u);
  EXPECT_EQ(algorithm.NumEpochs(), 3u);
  for (const Edge& e : stream.edges) algorithm.ProcessEdge(e);
  EXPECT_TRUE(ValidateSolution(inst, algorithm.Finalize()).ok);
}

TEST(RandomOrderTest, SketchEpoch0VariantIsValid) {
  auto inst = PlantedInstance(256, 4096, 4, 14);
  RandomOrderParams params;
  params.use_sketch_epoch0 = true;
  RandomOrderAlgorithm algorithm(25, params);
  RunAndValidate(algorithm, inst, StreamOrder::kRandom, 15);
}

TEST(RandomOrderTest, SketchEpoch0ComparableQuality) {
  // The sketch only overcounts, so it can only mark extra elements;
  // the resulting cover stays in the same quality band.
  auto inst = PlantedInstance(256, 4096, 4, 16);
  Rng rng(17);
  auto stream = RandomOrderStream(inst, rng);

  RandomOrderAlgorithm exact(29);
  auto exact_sol = RunStream(exact, stream);

  RandomOrderParams params;
  params.use_sketch_epoch0 = true;
  RandomOrderAlgorithm sketched(29, params);
  auto sketch_sol = RunStream(sketched, stream);

  EXPECT_TRUE(ValidateSolution(inst, sketch_sol).ok);
  EXPECT_LE(sketch_sol.cover.size(), 2 * exact_sol.cover.size() + 16);
}

TEST(RandomOrderTest, ReusableAcrossBeginCalls) {
  auto inst = PlantedInstance(60, 300, 3, 12);
  RandomOrderAlgorithm algorithm(23);
  auto s1 = RunAndValidate(algorithm, inst, StreamOrder::kRandom, 13);
  auto s2 = RunAndValidate(algorithm, inst, StreamOrder::kRandom, 13);
  EXPECT_EQ(s1.cover, s2.cover);
}

}  // namespace
}  // namespace setcover
