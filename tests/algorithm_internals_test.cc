// White-box tests of the paper-facing internals: sampling rates,
// schedules, level mechanics, and the statistical behavior the analysis
// sections rely on. These complement the black-box cover-validity
// sweeps in property_test.cc.

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "core/adversarial_level.h"
#include "core/kk_algorithm.h"
#include "core/random_order.h"
#include "instance/generators.h"
#include "instance/validator.h"
#include "stream/orderings.h"
#include "util/rng.h"

namespace setcover {
namespace {

// --- Algorithm 2 internals -------------------------------------------

TEST(AdversarialLevelInternals, D0SampleSizeConcentratesAroundAlpha) {
  // Line 6: every set enters D_0 w.p. α/m, so E|D_0| = α. With no
  // stream processed, the solution is exactly D_0.
  const uint32_t n = 256, m = 4096;
  StreamMetadata meta{m, n, 0};
  double total = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    AdversarialLevelAlgorithm algorithm(100 + t);
    algorithm.Begin(meta);
    total += double(algorithm.Finalize().cover.size());
  }
  double alpha = 2.0 * std::sqrt(double(n));  // default α = 2√n = 32
  EXPECT_NEAR(total / trials, alpha, 0.35 * alpha);
}

TEST(AdversarialLevelInternals, PromotionRateIsOneOverAlpha) {
  // Feed k uncovered edges of one giant set: promotions ~ Bin(k, 1/α).
  const uint32_t n = 10000, m = 64;
  StreamMetadata meta{m, n, n};
  AdversarialLevelParams params;
  params.alpha = 200.0;  // = 2√n
  double levels_total = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    AdversarialLevelAlgorithm algorithm(3 + t, params);
    algorithm.Begin(meta);
    for (ElementId u = 0; u < n; ++u) algorithm.ProcessEdge({0, u});
    algorithm.Finalize();
    auto hist = algorithm.LevelHistogram();
    double level = 0;
    for (size_t i = 1; i < hist.size(); ++i) level += double(i * hist[i]);
    levels_total += level;
  }
  // E[promotions] ≈ n/α = 50 (slightly less once the set self-covers).
  EXPECT_NEAR(levels_total / trials, 50.0, 25.0);
}

TEST(AdversarialLevelInternals, CoveredElementsStopPromoting) {
  // Repeating the same element never promotes more than once-ish:
  // after the element is covered, line 11 skips everything.
  const uint32_t n = 4, m = 4;
  StreamMetadata meta{m, n, 1000};
  AdversarialLevelParams params;
  params.alpha = 4.0;  // clamped to 2√4 = 4
  AdversarialLevelAlgorithm algorithm(5, params);
  algorithm.Begin(meta);
  // Force set 0 into the solution by feeding distinct elements until
  // it covers element 0 (or give up after the stream).
  for (int rep = 0; rep < 1000; ++rep) algorithm.ProcessEdge({0, 0});
  auto solution = algorithm.Finalize();
  // Element 0 is covered (at worst by patching with R(0) = set 0).
  EXPECT_EQ(solution.certificate[0], 0u);
  // The level of set 0 stopped growing once 0 was covered: with
  // p_1 = min(1, α³/(n·m)) = 1 the first promotion covers immediately,
  // so levels stay tiny.
  auto hist = algorithm.LevelHistogram();
  for (size_t level = 3; level < hist.size(); ++level) {
    EXPECT_EQ(hist[level], 0u);
  }
}

// --- KK internals -----------------------------------------------------

TEST(KkInternals, InclusionProbabilityReachesOneAtHighLevels) {
  // A set with uncovered-degree ~ n is included with probability 1 by
  // the time 2^i·√n/m >= 1 — feed one giant set alone and it must be
  // picked (not patched) well before its elements run out.
  const uint32_t n = 4096, m = 1024;
  StreamMetadata meta{m, n, n};
  KkAlgorithm algorithm(7);
  algorithm.Begin(meta);
  for (ElementId u = 0; u < n; ++u) algorithm.ProcessEdge({5, u});
  auto solution = algorithm.Finalize();
  ASSERT_FALSE(solution.cover.empty());
  EXPECT_EQ(solution.cover[0], 5u);
  EXPECT_EQ(algorithm.SampledCoverSize(), 1u);  // sampled, not patched
}

TEST(KkInternals, LevelHistogramSumsToM) {
  Rng rng(11);
  LogUniformParams p;
  p.num_elements = 128;
  p.num_sets = 1024;
  auto inst = GenerateLogUniform(p, rng);
  auto stream = RandomOrderStream(inst, rng);
  KkAlgorithm algorithm(13);
  RunStream(algorithm, stream);
  auto hist = algorithm.LevelHistogram();
  size_t total = std::accumulate(hist.begin(), hist.end(), size_t{0});
  EXPECT_EQ(total, 1024u);
}

TEST(KkInternals, DegreeCountsFreezeOnceCovered) {
  // Two identical sets: once one is in the solution and covers the
  // elements, the other's uncovered-degree stops at what it saw.
  const uint32_t n = 64, m = 2;
  StreamMetadata meta{m, n, 2 * n};
  KkParams params;
  params.inclusion_constant = 1e9;  // include at the first boundary
  KkAlgorithm algorithm(17, params);
  algorithm.Begin(meta);
  for (ElementId u = 0; u < n; ++u) {
    algorithm.ProcessEdge({0, u});
    algorithm.ProcessEdge({1, u});
  }
  algorithm.Finalize();
  auto hist = algorithm.LevelHistogram();
  // Set 0 reaches level 1 (√64 = 8 uncovered) and is included
  // immediately; set 1 then sees covered elements only — both sets sit
  // at low levels, nothing at level 3+.
  for (size_t level = 3; level < hist.size(); ++level) {
    EXPECT_EQ(hist[level], 0u);
  }
}

// --- Algorithm 1 internals --------------------------------------------

TEST(RandomOrderInternals, ScheduleConsumesAtMostBudgetFraction) {
  const uint32_t n = 1024, m = 65536;
  Rng rng(19);
  PlantedCoverParams p;
  p.num_elements = n;
  p.num_sets = m;
  p.planted_cover_size = 4;
  auto inst = GeneratePlantedCover(p, rng);
  auto stream = RandomOrderStream(inst, rng);

  RandomOrderParams params;
  params.main_budget_fraction = 0.3;
  RandomOrderAlgorithm algorithm(21, params);
  algorithm.Begin(stream.meta);
  // Total scheduled main-loop edges = K·J·B·ℓ_i summed ≤ 0.3·N.
  size_t scheduled = 0;
  for (uint32_t i = 1; i <= algorithm.NumAlgorithms(); ++i) {
    scheduled += size_t{algorithm.NumEpochs()} * algorithm.NumBatches() *
                 algorithm.SubepochLength(i);
  }
  EXPECT_LE(scheduled,
            size_t(0.31 * double(stream.meta.stream_length)) +
                algorithm.NumAlgorithms() * algorithm.NumEpochs() *
                    algorithm.NumBatches());
  for (const Edge& e : stream.edges) algorithm.ProcessEdge(e);
  EXPECT_TRUE(ValidateSolution(inst, algorithm.Finalize()).ok);
}

TEST(RandomOrderInternals, EpochStatsCoverFullSchedule) {
  const uint32_t n = 256, m = 16384;
  Rng rng(23);
  PlantedCoverParams p;
  p.num_elements = n;
  p.num_sets = m;
  p.planted_cover_size = 4;
  auto inst = GeneratePlantedCover(p, rng);
  auto stream = RandomOrderStream(inst, rng);
  RandomOrderAlgorithm algorithm(25);
  RunStream(algorithm, stream);
  const auto& stats = algorithm.Stats();
  // One stats row per (i, j) pair actually run; the stream is long
  // enough here for the full schedule.
  EXPECT_EQ(stats.epochs.size(),
            size_t{algorithm.NumAlgorithms()} * algorithm.NumEpochs());
  for (const auto& e : stats.epochs) {
    EXPECT_GE(e.algorithm_index, 1u);
    EXPECT_LE(e.algorithm_index, algorithm.NumAlgorithms());
    EXPECT_GE(e.epoch, 1u);
    EXPECT_LE(e.epoch, algorithm.NumEpochs());
  }
}

TEST(RandomOrderInternals, Epoch0SamplingRateMatchesP0) {
  const uint32_t n = 256, m = 65536;
  StreamMetadata meta{m, n, size_t{m} * 3};
  double total = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    RandomOrderAlgorithm algorithm(400 + t);
    algorithm.Begin(meta);
    total += double(algorithm.Stats().epoch0_sampled);
  }
  // E = m·p0 = C·√n·log₂m = 0.25·16·16 = 64.
  EXPECT_NEAR(total / trials, 64.0, 20.0);
}

TEST(RandomOrderInternals, SolutionCappedAtN) {
  // The §4.2 guard: |Sol| never exceeds n even with absurd sampling.
  const uint32_t n = 32, m = 8192;
  Rng rng(27);
  UniformRandomParams p;
  p.num_elements = n;
  p.num_sets = m;
  p.max_set_size = 4;
  auto inst = GenerateUniformRandom(p, rng);
  auto stream = RandomOrderStream(inst, rng);
  RandomOrderParams params;
  params.sampling_constant = 100.0;  // would sample thousands of sets
  RandomOrderAlgorithm algorithm(29, params);
  auto solution = RunStream(algorithm, stream);
  // Sampled Sol is capped at n; patching can add at most one set per
  // unwitnessed element, so the cover is bounded by 2n (instead of the
  // thousands the uncapped sampling would produce).
  EXPECT_LE(solution.cover.size(), size_t{2 * n});
  EXPECT_TRUE(ValidateSolution(inst, solution).ok);
}

}  // namespace
}  // namespace setcover
