// Per-kernel differential suite for the SIMD dispatch layer
// (util/simd.h): every tier's kernel table must produce bit-identical
// outputs to the scalar reference on randomized inputs, across the
// sizes where lane handling goes wrong (empty, single, one-off-a-word,
// exact words, vector-width remainders). The scalar tier is the
// semantics; the other tiers exist only to be faster.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "util/crc32.h"
#include "util/rng.h"
#include "util/simd.h"

namespace setcover {
namespace {

// Sizes chosen to hit: empty input, scalar tails shorter than any
// vector width, exact 64-bit mask words, one over/under a mask word,
// multiple words, and a large non-aligned count.
const size_t kSizes[] = {0, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                         31, 32, 33, 63, 64, 65, 127, 128, 129, 511,
                         512, 513, 1000};

std::vector<simd::Level> TestableLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::MaxSupportedLevel() >= simd::Level::kSse42) {
    levels.push_back(simd::Level::kSse42);
  }
  if (simd::MaxSupportedLevel() >= simd::Level::kAvx2) {
    levels.push_back(simd::Level::kAvx2);
  }
  return levels;
}

std::vector<uint64_t> RandomWords(Rng& rng, size_t count) {
  std::vector<uint64_t> words(count);
  for (uint64_t& w : words) w = rng.Next64();
  return words;
}

TEST(SimdKernelTest, GatherBitsMatchesScalarAtEveryTier) {
  Rng rng(1);
  const std::vector<uint64_t> bits = RandomWords(rng, 64);  // 4096 bits
  for (simd::Level level : TestableLevels()) {
    const simd::Kernels& kernels = simd::ForLevel(level);
    for (size_t count : kSizes) {
      std::vector<uint32_t> ids(count);
      for (uint32_t& id : ids) {
        id = uint32_t(rng.Next64() % (64 * 64));
      }
      const size_t mask_words = (count + 63) / 64;
      // Poisoned output buffers prove every word (and the tail bits)
      // is written, not merely left zero.
      std::vector<uint64_t> expected(mask_words + 1, ~uint64_t{0});
      std::vector<uint64_t> actual(mask_words + 1, ~uint64_t{0});
      simd::ForLevel(simd::Level::kScalar)
          .gather_bits(bits.data(), ids.data(), count, expected.data());
      kernels.gather_bits(bits.data(), ids.data(), count, actual.data());
      EXPECT_EQ(expected, actual)
          << simd::LevelName(level) << " count=" << count;
      // The convention: bits at positions >= count in the last written
      // word are zero; the sentinel word past the end is untouched.
      if (count % 64 != 0) {
        EXPECT_EQ(actual[mask_words - 1] >> (count % 64), 0u)
            << simd::LevelName(level) << " count=" << count;
      }
      EXPECT_EQ(actual[mask_words], ~uint64_t{0})
          << simd::LevelName(level) << " count=" << count;
    }
  }
}

TEST(SimdKernelTest, GatherEqualU32MatchesScalarAtEveryTier) {
  Rng rng(2);
  std::vector<uint32_t> values(4096);
  for (uint32_t& v : values) {
    // Dense collisions with the needle so both mask polarities occur.
    v = uint32_t(rng.Next64() % 4);
  }
  const uint32_t needle = 3;
  for (simd::Level level : TestableLevels()) {
    const simd::Kernels& kernels = simd::ForLevel(level);
    for (size_t count : kSizes) {
      std::vector<uint32_t> ids(count);
      for (uint32_t& id : ids) {
        id = uint32_t(rng.Next64() % values.size());
      }
      const size_t mask_words = (count + 63) / 64;
      std::vector<uint64_t> expected(mask_words + 1, ~uint64_t{0});
      std::vector<uint64_t> actual(mask_words + 1, ~uint64_t{0});
      simd::ForLevel(simd::Level::kScalar)
          .gather_equal_u32(values.data(), ids.data(), count, needle,
                            expected.data());
      kernels.gather_equal_u32(values.data(), ids.data(), count, needle,
                               actual.data());
      EXPECT_EQ(expected, actual)
          << simd::LevelName(level) << " count=" << count;
      EXPECT_EQ(actual[mask_words], ~uint64_t{0})
          << simd::LevelName(level) << " count=" << count;
    }
  }
}

TEST(SimdKernelTest, PopcountKernelsMatchScalarAtEveryTier) {
  Rng rng(3);
  for (simd::Level level : TestableLevels()) {
    const simd::Kernels& kernels = simd::ForLevel(level);
    for (size_t count : kSizes) {
      const std::vector<uint64_t> a = RandomWords(rng, count);
      const std::vector<uint64_t> b = RandomWords(rng, count);
      const simd::Kernels& scalar = simd::ForLevel(simd::Level::kScalar);
      EXPECT_EQ(scalar.popcount_words(a.data(), count),
                kernels.popcount_words(a.data(), count))
          << simd::LevelName(level) << " count=" << count;
      EXPECT_EQ(scalar.popcount_andnot_words(a.data(), b.data(), count),
                kernels.popcount_andnot_words(a.data(), b.data(), count))
          << simd::LevelName(level) << " count=" << count;
    }
  }
}

TEST(SimdKernelTest, LessThanIndicesMatchesScalarAtEveryTier) {
  Rng rng(4);
  for (simd::Level level : TestableLevels()) {
    const simd::Kernels& kernels = simd::ForLevel(level);
    for (size_t count : kSizes) {
      std::vector<double> values(count);
      for (double& v : values) v = rng.UniformDouble();
      // Thresholds at the degenerate ends and in between; the exact
      // coin values also appear as thresholds so the strict `<` edge
      // (coin == p never fires) is exercised.
      std::vector<double> thresholds = {0.0, 1e-12, 0.25, 0.5, 0.75, 1.0};
      if (count > 0) thresholds.push_back(values[count / 2]);
      for (double threshold : thresholds) {
        std::vector<uint32_t> expected(count + 1, 0xDEADBEEF);
        std::vector<uint32_t> actual(count + 1, 0xDEADBEEF);
        const size_t expected_found =
            simd::ForLevel(simd::Level::kScalar)
                .less_than_indices_f64(values.data(), count, threshold,
                                       expected.data());
        const size_t actual_found = kernels.less_than_indices_f64(
            values.data(), count, threshold, actual.data());
        ASSERT_EQ(expected_found, actual_found)
            << simd::LevelName(level) << " count=" << count
            << " threshold=" << threshold;
        for (size_t i = 0; i < expected_found; ++i) {
          ASSERT_EQ(expected[i], actual[i])
              << simd::LevelName(level) << " count=" << count
              << " threshold=" << threshold << " i=" << i;
        }
        // Emitted indices are ascending and all satisfy the predicate.
        for (size_t i = 0; i < actual_found; ++i) {
          ASSERT_LT(values[actual[i]], threshold);
          if (i > 0) {
            ASSERT_LT(actual[i - 1], actual[i]);
          }
        }
      }
    }
  }
}

TEST(SimdKernelTest, Crc32cKernelMatchesPortableAtEveryTier) {
  Rng rng(5);
  for (simd::Level level : TestableLevels()) {
    const simd::Kernels& kernels = simd::ForLevel(level);
    // The RFC 3720 check value.
    EXPECT_EQ(kernels.crc32c("123456789", 9, 0), 0xE3069283u)
        << simd::LevelName(level);
    for (size_t count : kSizes) {
      std::vector<uint8_t> data(count);
      for (uint8_t& b : data) b = uint8_t(rng.Next64());
      const uint32_t seed = uint32_t(rng.Next64());
      EXPECT_EQ(Crc32cPortable(data.data(), count, seed),
                kernels.crc32c(data.data(), count, seed))
          << simd::LevelName(level) << " count=" << count;
    }
  }
}

TEST(SimdKernelTest, ParseLevelAcceptsDocumentedNamesOnly) {
  simd::Level level;
  ASSERT_TRUE(simd::ParseLevel("scalar", &level));
  EXPECT_EQ(level, simd::Level::kScalar);
  ASSERT_TRUE(simd::ParseLevel("sse4.2", &level));
  EXPECT_EQ(level, simd::Level::kSse42);
  ASSERT_TRUE(simd::ParseLevel("sse42", &level));
  EXPECT_EQ(level, simd::Level::kSse42);
  ASSERT_TRUE(simd::ParseLevel("avx2", &level));
  EXPECT_EQ(level, simd::Level::kAvx2);
  EXPECT_FALSE(simd::ParseLevel("", &level));
  EXPECT_FALSE(simd::ParseLevel("avx512", &level));
  EXPECT_FALSE(simd::ParseLevel("SCALAR", &level));
}

TEST(SimdKernelTest, LevelNamesRoundTrip) {
  for (simd::Level level : {simd::Level::kScalar, simd::Level::kSse42,
                            simd::Level::kAvx2}) {
    simd::Level parsed;
    ASSERT_TRUE(simd::ParseLevel(simd::LevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
}

TEST(SimdKernelTest, ForceLevelForTestClampsAndRestores) {
  const simd::Level original = simd::ActiveLevel();
  const simd::Level previous = simd::ForceLevelForTest(simd::Level::kScalar);
  EXPECT_EQ(previous, original);
  EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  // Forcing above the CPU's capability clamps instead of faulting.
  simd::ForceLevelForTest(simd::Level::kAvx2);
  EXPECT_LE(simd::ActiveLevel(), simd::MaxSupportedLevel());
  simd::ForceLevelForTest(original);
  EXPECT_EQ(simd::ActiveLevel(), original);
}

}  // namespace
}  // namespace setcover
