#include "core/trivial.h"

#include <gtest/gtest.h>

#include "instance/generators.h"
#include "tests/test_util.h"

namespace setcover {
namespace {

TEST(FirstSetPatchingTest, ValidCoverOnAllOrders) {
  Rng rng(1);
  UniformRandomParams params;
  params.num_elements = 60;
  params.num_sets = 25;
  params.max_set_size = 8;
  auto inst = GenerateUniformRandom(params, rng);
  for (StreamOrder order :
       {StreamOrder::kRandom, StreamOrder::kSetMajor,
        StreamOrder::kElementMajor, StreamOrder::kRoundRobinSets}) {
    FirstSetPatching algorithm;
    RunAndValidate(algorithm, inst, order, 7);
  }
}

TEST(FirstSetPatchingTest, CoverIsAtMostN) {
  Rng rng(2);
  UniformRandomParams params;
  params.num_elements = 40;
  params.num_sets = 100;
  auto inst = GenerateUniformRandom(params, rng);
  FirstSetPatching algorithm;
  auto sol = RunAndValidate(algorithm, inst, StreamOrder::kRandom, 3);
  EXPECT_LE(sol.cover.size(), 40u);
}

TEST(FirstSetPatchingTest, SpaceIsLinearInN) {
  auto inst = GeneratePartition(1000, 10);
  FirstSetPatching algorithm;
  RunAndValidate(algorithm, inst, StreamOrder::kSetMajor, 1);
  EXPECT_EQ(algorithm.Meter().PeakWords(), 1000u);
}

TEST(FirstSetPatchingTest, SingleSetInstance) {
  auto inst = SetCoverInstance::FromSets(3, {{0, 1, 2}});
  FirstSetPatching algorithm;
  auto sol = RunAndValidate(algorithm, inst, StreamOrder::kSetMajor, 1);
  EXPECT_EQ(sol.cover.size(), 1u);
}

TEST(StoreEverythingGreedyTest, MatchesOfflineGreedyQuality) {
  auto inst = GeneratePartition(64, 8);
  StoreEverythingGreedy algorithm;
  auto sol = RunAndValidate(algorithm, inst, StreamOrder::kRandom, 5);
  EXPECT_EQ(sol.cover.size(), 8u);
}

TEST(StoreEverythingGreedyTest, SpaceIsStreamLength) {
  Rng rng(4);
  UniformRandomParams params;
  params.num_elements = 50;
  params.num_sets = 30;
  auto inst = GenerateUniformRandom(params, rng);
  StoreEverythingGreedy algorithm;
  RunAndValidate(algorithm, inst, StreamOrder::kRandom, 6);
  EXPECT_EQ(algorithm.Meter().PeakWords(), inst.NumEdges());
}

TEST(StoreEverythingGreedyTest, ReusableAcrossRuns) {
  auto inst = GeneratePartition(20, 4);
  StoreEverythingGreedy algorithm;
  auto first = RunAndValidate(algorithm, inst, StreamOrder::kRandom, 1);
  auto second = RunAndValidate(algorithm, inst, StreamOrder::kRandom, 2);
  EXPECT_EQ(first.cover.size(), second.cover.size());
}

}  // namespace
}  // namespace setcover
