#include "util/crc32.h"

#include <cstring>
#include <string>

#include <gtest/gtest.h>

namespace setcover {
namespace {

TEST(Crc32Test, MatchesKnownVectors) {
  // The canonical check value for CRC-32/IEEE.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  EXPECT_EQ(Crc32("a", 1), 0xE8B7BE43u);
  EXPECT_EQ(Crc32("abc", 3), 0x352441C2u);
}

TEST(Crc32Test, IncrementalEqualsOneShot) {
  const std::string data =
      "one-pass edge-arrival streaming set cover checkpoints";
  const uint32_t whole = Crc32(data.data(), data.size());
  for (size_t cut = 0; cut <= data.size(); ++cut) {
    uint32_t prefix = Crc32(data.data(), cut);
    uint32_t rest = Crc32(data.data() + cut, data.size() - cut, prefix);
    EXPECT_EQ(rest, whole) << "cut at " << cut;
  }
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  uint8_t buffer[64];
  for (size_t i = 0; i < sizeof buffer; ++i)
    buffer[i] = uint8_t(i * 37 + 11);
  const uint32_t clean = Crc32(buffer, sizeof buffer);
  for (size_t byte = 0; byte < sizeof buffer; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      buffer[byte] ^= uint8_t(1u << bit);
      EXPECT_NE(Crc32(buffer, sizeof buffer), clean)
          << "flip at byte " << byte << " bit " << bit;
      buffer[byte] ^= uint8_t(1u << bit);
    }
  }
}

TEST(Crc32cTest, MatchesKnownVectors) {
  // The canonical check value for CRC-32C (Castagnoli).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  EXPECT_EQ(Crc32cPortable("123456789", 9), 0xE3069283u);
}

TEST(Crc32cTest, HardwareDispatchMatchesPortableTable) {
  // Whatever Crc32c dispatches to (SSE4.2 or the table) must agree with
  // the portable implementation on every length and alignment — v3
  // files written on one machine must verify on any other.
  uint8_t buffer[512];
  uint64_t x = 0x9E3779B97F4A7C15ull;
  for (size_t i = 0; i < sizeof buffer; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    buffer[i] = uint8_t(x);
  }
  for (size_t offset : {size_t{0}, size_t{1}, size_t{3}, size_t{7}}) {
    for (size_t len = 0; offset + len <= sizeof buffer; len += 13) {
      EXPECT_EQ(Crc32c(buffer + offset, len),
                Crc32cPortable(buffer + offset, len))
          << "offset " << offset << " len " << len;
    }
  }
}

TEST(Crc32cTest, IncrementalEqualsOneShot) {
  const std::string data = "delta-varint chunks with trailing index";
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t cut = 0; cut <= data.size(); ++cut) {
    uint32_t prefix = Crc32c(data.data(), cut);
    EXPECT_EQ(Crc32c(data.data() + cut, data.size() - cut, prefix), whole)
        << "cut at " << cut;
  }
}

TEST(Crc32cTest, IsADifferentPolynomialThanCrc32) {
  EXPECT_NE(Crc32c("123456789", 9), Crc32("123456789", 9));
}

}  // namespace
}  // namespace setcover
