#include "util/crc32.h"

#include <cstring>
#include <string>

#include <gtest/gtest.h>

namespace setcover {
namespace {

TEST(Crc32Test, MatchesKnownVectors) {
  // The canonical check value for CRC-32/IEEE.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  EXPECT_EQ(Crc32("a", 1), 0xE8B7BE43u);
  EXPECT_EQ(Crc32("abc", 3), 0x352441C2u);
}

TEST(Crc32Test, IncrementalEqualsOneShot) {
  const std::string data =
      "one-pass edge-arrival streaming set cover checkpoints";
  const uint32_t whole = Crc32(data.data(), data.size());
  for (size_t cut = 0; cut <= data.size(); ++cut) {
    uint32_t prefix = Crc32(data.data(), cut);
    uint32_t rest = Crc32(data.data() + cut, data.size() - cut, prefix);
    EXPECT_EQ(rest, whole) << "cut at " << cut;
  }
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  uint8_t buffer[64];
  for (size_t i = 0; i < sizeof buffer; ++i)
    buffer[i] = uint8_t(i * 37 + 11);
  const uint32_t clean = Crc32(buffer, sizeof buffer);
  for (size_t byte = 0; byte < sizeof buffer; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      buffer[byte] ^= uint8_t(1u << bit);
      EXPECT_NE(Crc32(buffer, sizeof buffer), clean)
          << "flip at byte " << byte << " bit " << bit;
      buffer[byte] ^= uint8_t(1u << bit);
    }
  }
}

}  // namespace
}  // namespace setcover
