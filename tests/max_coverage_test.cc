#include "core/max_coverage.h"

#include <gtest/gtest.h>

#include "instance/generators.h"
#include "stream/orderings.h"
#include "util/rng.h"

namespace setcover {
namespace {

TEST(GreedyMaxCoverageTest, PicksObviousBest) {
  auto inst = SetCoverInstance::FromSets(
      8, {{0}, {0, 1, 2, 3}, {4, 5, 6, 7}, {7}});
  auto result = GreedyMaxCoverage(inst, 2);
  EXPECT_EQ(result.covered_elements, 8u);
  ASSERT_EQ(result.chosen.size(), 2u);
  EXPECT_TRUE((result.chosen[0] == 1 && result.chosen[1] == 2) ||
              (result.chosen[0] == 2 && result.chosen[1] == 1));
}

TEST(GreedyMaxCoverageTest, RespectsBudget) {
  auto inst = GeneratePartition(100, 10);
  for (uint32_t budget : {1u, 3u, 10u, 50u}) {
    auto result = GreedyMaxCoverage(inst, budget);
    EXPECT_LE(result.chosen.size(), budget);
    // Partition blocks are size 10: coverage = 10·min(budget, 10).
    EXPECT_EQ(result.covered_elements, 10u * std::min(budget, 10u));
  }
}

TEST(GreedyMaxCoverageTest, CoverageMatchesCoverageOf) {
  Rng rng(1);
  UniformRandomParams p;
  p.num_elements = 80;
  p.num_sets = 60;
  p.max_set_size = 10;
  auto inst = GenerateUniformRandom(p, rng);
  auto result = GreedyMaxCoverage(inst, 7);
  EXPECT_EQ(result.covered_elements, CoverageOf(inst, result.chosen));
}

TEST(GreedyMaxCoverageTest, StopsWhenNothingGains) {
  auto inst = SetCoverInstance::FromSets(4, {{0, 1}, {0, 1}, {2, 3}});
  auto result = GreedyMaxCoverage(inst, 3);
  // Two picks cover everything; the third adds nothing and is skipped.
  EXPECT_EQ(result.chosen.size(), 2u);
  EXPECT_EQ(result.covered_elements, 4u);
}

TEST(StreamingMaxCoverageTest, RespectsBudgetAndReportsFloor) {
  Rng rng(2);
  PlantedCoverParams p;
  p.num_elements = 256;
  p.num_sets = 2048;
  p.planted_cover_size = 8;
  p.decoy_max_size = 4;
  auto inst = GeneratePlantedCover(p, rng);
  auto stream = RandomOrderStream(inst, rng);
  auto result = RunStreamingMaxCoverage(stream, 8);
  EXPECT_LE(result.chosen.size(), 8u);
  EXPECT_LE(result.covered_elements, CoverageOf(inst, result.chosen));
}

TEST(StreamingMaxCoverageTest, CompetitiveWithGreedyOnPlanted) {
  // The planted sets dominate coverage; the threshold rule should find
  // a constant fraction of what offline greedy covers.
  Rng rng(3);
  PlantedCoverParams p;
  p.num_elements = 512;
  p.num_sets = 4096;
  p.planted_cover_size = 8;
  p.decoy_max_size = 4;
  auto inst = GeneratePlantedCover(p, rng);
  auto stream = RandomOrderStream(inst, rng);

  auto offline = GreedyMaxCoverage(inst, 8);
  auto streaming = RunStreamingMaxCoverage(stream, 8);
  size_t streaming_true = CoverageOf(inst, streaming.chosen);
  EXPECT_GE(3 * streaming_true, offline.covered_elements);
}

TEST(StreamingMaxCoverageTest, FillsBudgetWithResidualCounters) {
  // No set reaches the threshold (tiny sets): the leftover budget is
  // spent on the best counters at the end.
  auto inst = GeneratePartition(64, 32);  // blocks of 2
  Rng rng(4);
  auto stream = RandomOrderStream(inst, rng);
  auto result = RunStreamingMaxCoverage(stream, 5, /*fraction=*/2.0);
  EXPECT_EQ(result.chosen.size(), 5u);
  EXPECT_GE(CoverageOf(inst, result.chosen), 10u);  // 5 blocks × 2
}

TEST(StreamingMaxCoverageTest, BudgetOneTakesAThresholdSet) {
  auto inst = SetCoverInstance::FromSets(
      10, {{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, {0}, {1}});
  Rng rng(5);
  auto stream = RandomOrderStream(inst, rng);
  auto result = RunStreamingMaxCoverage(stream, 1);
  ASSERT_EQ(result.chosen.size(), 1u);
  EXPECT_EQ(result.chosen[0], 0u);
}

TEST(StreamingMaxCoverageTest, SpaceIsMPlusNBits) {
  Rng rng(6);
  UniformRandomParams p;
  p.num_elements = 128;
  p.num_sets = 4096;
  auto inst = GenerateUniformRandom(p, rng);
  auto stream = RandomOrderStream(inst, rng);
  StreamingMaxCoverage algorithm(16);
  algorithm.Begin(stream.meta);
  for (const Edge& e : stream.edges) algorithm.ProcessEdge(e);
  algorithm.Finalize();
  EXPECT_LE(algorithm.Meter().PeakWords(), 4096u + 128u + 64u);
}

}  // namespace
}  // namespace setcover
