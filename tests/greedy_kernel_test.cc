// Differential suite for the bucket-queue greedy kernel: on every input
// the word-parallel bucket implementation must return the *same* cover
// and certificate as the classic lazy-heap reference (offline/greedy.cc
// documents why the two are verbatim-equivalent, this suite pins it).

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "instance/generators.h"
#include "instance/instance.h"
#include "instance/validator.h"
#include "offline/greedy.h"
#include "util/rng.h"

namespace setcover {
namespace {

void ExpectIdenticalToReference(const SetCoverInstance& inst,
                                const std::string& label) {
  CoverSolution fast = GreedyCover(inst);
  CoverSolution ref = GreedyCoverReference(inst);
  EXPECT_EQ(fast.cover, ref.cover) << label;
  EXPECT_EQ(fast.certificate, ref.certificate) << label;
  if (inst.IsFeasible()) {
    auto check = ValidateSolution(inst, fast);
    EXPECT_TRUE(check.ok) << label << ": " << check.error;
  }
}

struct SizePoint {
  uint32_t num_elements;
  uint32_t num_sets;
};

// Small (forces tie storms), medium, and >64-element (multi-word
// bitset kernels) sizes.
const SizePoint kSizes[] = {{6, 5}, {40, 24}, {200, 80}, {700, 150}};

TEST(GreedyKernelTest, MatchesReferenceOnUniformRandom) {
  Rng rng(101);
  for (const SizePoint& size : kSizes) {
    for (int trial = 0; trial < 4; ++trial) {
      UniformRandomParams params;
      params.num_elements = size.num_elements;
      params.num_sets = size.num_sets;
      params.min_set_size = 1;
      params.max_set_size = std::max(2u, size.num_elements / 4);
      auto inst = GenerateUniformRandom(params, rng);
      ExpectIdenticalToReference(
          inst, "uniform n=" + std::to_string(size.num_elements) +
                    " trial=" + std::to_string(trial));
    }
  }
}

TEST(GreedyKernelTest, MatchesReferenceOnPlantedCover) {
  Rng rng(202);
  for (const SizePoint& size : kSizes) {
    PlantedCoverParams params;
    params.num_elements = size.num_elements;
    params.num_sets = size.num_sets;
    params.planted_cover_size = std::max(2u, size.num_sets / 8);
    auto inst = GeneratePlantedCover(params, rng);
    ExpectIdenticalToReference(
        inst, "planted n=" + std::to_string(size.num_elements));
  }
}

TEST(GreedyKernelTest, MatchesReferenceOnZipf) {
  Rng rng(303);
  for (const SizePoint& size : kSizes) {
    ZipfParams params;
    params.num_elements = size.num_elements;
    params.num_sets = size.num_sets;
    params.max_set_size = std::max(2u, size.num_elements / 3);
    auto inst = GenerateZipf(params, rng);
    ExpectIdenticalToReference(inst,
                               "zipf n=" + std::to_string(size.num_elements));
  }
}

TEST(GreedyKernelTest, MatchesReferenceOnLogUniform) {
  Rng rng(404);
  for (const SizePoint& size : kSizes) {
    LogUniformParams params;
    params.num_elements = size.num_elements;
    params.num_sets = size.num_sets;
    auto inst = GenerateLogUniform(params, rng);
    ExpectIdenticalToReference(
        inst, "loguniform n=" + std::to_string(size.num_elements));
  }
}

TEST(GreedyKernelTest, MatchesReferenceOnDominatingSet) {
  Rng rng(505);
  for (double p : {0.02, 0.1, 0.4}) {
    auto inst = GenerateDominatingSet(120, p, rng);
    ExpectIdenticalToReference(inst, "domset p=" + std::to_string(p));
  }
}

TEST(GreedyKernelTest, MatchesReferenceOnPartition) {
  // Pure tie-breaking stress: every set has identical gain at every
  // step, so any deviation from the reference's pop order shows up.
  ExpectIdenticalToReference(GeneratePartition(128, 8), "partition-128-8");
  ExpectIdenticalToReference(GeneratePartition(65, 13), "partition-65-13");
}

TEST(GreedyKernelTest, MatchesReferenceOnDuplicatedSets) {
  // Many sets with the same content — the heap breaks these ties by id
  // history; the bucket sweep must reproduce it exactly.
  std::vector<std::vector<ElementId>> sets;
  for (int copy = 0; copy < 6; ++copy) sets.push_back({0, 1, 2, 3});
  for (int copy = 0; copy < 6; ++copy) sets.push_back({4, 5});
  sets.push_back({6});
  ExpectIdenticalToReference(SetCoverInstance::FromSets(7, std::move(sets)),
                             "duplicated-sets");
}

TEST(GreedyKernelTest, MatchesReferenceOnInfeasibleInstance) {
  // Element 4 is in no set: both implementations must cover the
  // coverable part and leave a kNoSet certificate entry for it.
  auto inst = SetCoverInstance::FromSets(5, {{0, 1}, {2}, {1, 3}});
  ASSERT_FALSE(inst.IsFeasible());
  CoverSolution fast = GreedyCover(inst);
  CoverSolution ref = GreedyCoverReference(inst);
  EXPECT_EQ(fast.cover, ref.cover);
  EXPECT_EQ(fast.certificate, ref.certificate);
  EXPECT_EQ(fast.certificate[4], kNoSet);
}

TEST(GreedyKernelTest, HandlesDegenerateInstances) {
  ExpectIdenticalToReference(SetCoverInstance::FromSets(1, {{0}}),
                             "singleton");
  ExpectIdenticalToReference(SetCoverInstance::FromSets(3, {{}, {}, {}}),
                             "all-empty-sets");
  // No sets at all.
  auto empty = SetCoverInstance::FromSets(2, {});
  CoverSolution fast = GreedyCover(empty);
  EXPECT_TRUE(fast.cover.empty());
  EXPECT_EQ(fast.certificate, std::vector<SetId>(2, kNoSet));
}

TEST(GreedyKernelTest, ExplicitWorkspaceIsReusableAcrossInstances) {
  // One workspace driven across instances of very different shapes must
  // give the same answers as fresh thread-local scratch every time.
  GreedyWorkspace workspace;
  Rng rng(606);
  for (const SizePoint& size : kSizes) {
    UniformRandomParams params;
    params.num_elements = size.num_elements;
    params.num_sets = size.num_sets;
    params.max_set_size = std::max(2u, size.num_elements / 4);
    auto inst = GenerateUniformRandom(params, rng);
    CoverSolution with_workspace = GreedyCover(inst, &workspace);
    CoverSolution fresh = GreedyCover(inst);
    EXPECT_EQ(with_workspace.cover, fresh.cover);
    EXPECT_EQ(with_workspace.certificate, fresh.certificate);
  }
  // Shrinking back down after the largest instance must not leak stale
  // covered bits or bucket entries.
  ExpectIdenticalToReference(GeneratePartition(30, 3), "post-reuse");
  CoverSolution small = GreedyCover(GeneratePartition(30, 3), &workspace);
  CoverSolution small_ref = GreedyCoverReference(GeneratePartition(30, 3));
  EXPECT_EQ(small.cover, small_ref.cover);
  EXPECT_EQ(small.certificate, small_ref.certificate);
}

TEST(GreedyKernelTest, RepeatedCallsAreDeterministic) {
  Rng rng(707);
  UniformRandomParams params;
  params.num_elements = 150;
  params.num_sets = 60;
  params.max_set_size = 20;
  auto inst = GenerateUniformRandom(params, rng);
  CoverSolution first = GreedyCover(inst);
  for (int repeat = 0; repeat < 3; ++repeat) {
    CoverSolution again = GreedyCover(inst);
    EXPECT_EQ(again.cover, first.cover);
    EXPECT_EQ(again.certificate, first.certificate);
  }
}

}  // namespace
}  // namespace setcover
