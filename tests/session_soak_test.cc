// The kill-and-resume soak: ≥1000 ingest sessions interleaved over one
// SessionServer, the server hard-killed (Abort — no drain sweep, only
// periodic checkpoints survive) in mid-traffic and restarted on the
// same state directory. Every session — killed mid-flight or not,
// clean or fault-injected — must finish with a cover and certificate
// bit-identical to an unkilled engine::Execute oracle, and the
// exactly-once cursor must have absorbed every client replay.
// scripts/check.sh runs this under TSan.

#include <atomic>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "engine/engine.h"
#include "instance/generators.h"
#include "server/client.h"
#include "server/server.h"
#include "stream/orderings.h"
#include "util/rng.h"

namespace setcover {
namespace server {
namespace {

struct Fixture {
  SetCoverInstance instance;
  EdgeStream stream;
};

Fixture MakeFixture(uint64_t seed) {
  Rng rng(seed);
  UniformRandomParams p;
  p.num_elements = 40;
  p.num_sets = 50;
  Fixture fixture{GenerateUniformRandom(p, rng), {}};
  fixture.stream = OrderedStream(fixture.instance, StreamOrder::kRandom, rng);
  return fixture;
}

std::vector<uint32_t> ToU32(const std::vector<SetId>& ids) {
  return std::vector<uint32_t>(ids.begin(), ids.end());
}

/// Session plan: algorithm, seed, and an optional fault schedule cycle
/// deterministically from the session id.
struct Plan {
  std::string algorithm;
  uint64_t seed = 0;
  std::optional<FaultSchedule> faults;
};

Plan PlanFor(uint64_t session_id, const std::vector<std::string>& names) {
  Plan plan;
  plan.algorithm = names[session_id % names.size()];
  plan.seed = 1000 + session_id % 7;
  if (session_id % 4 == 0)
    plan.faults = FaultSchedule::AllKinds(200 + session_id % 5);
  return plan;
}

TEST(SessionSoak, KilledAndResumedServerFinishesEverySessionBitIdentical) {
  const Fixture fixture = MakeFixture(301);
  const std::vector<std::string> names = RegisteredAlgorithmNames();
  constexpr uint64_t kSessions = 1024;
  constexpr int kThreads = 8;
  constexpr size_t kBatch = 32;

  const std::string state_dir = testing::TempDir() + "soak_state";
  std::filesystem::remove_all(state_dir);  // no leftovers from past runs
  std::filesystem::create_directories(state_dir);

  // Unkilled oracles, one per distinct plan (plans cycle, so this is a
  // handful of engine runs, not a thousand).
  std::map<std::string, engine::RunReport> oracles;
  auto oracle_key = [&](const Plan& plan) {
    std::string key = plan.algorithm + "/" + std::to_string(plan.seed);
    if (plan.faults)
      key += "/f" + std::to_string(plan.faults->seed);
    return key;
  };
  for (uint64_t id = 1; id <= kSessions; ++id) {
    const Plan plan = PlanFor(id, names);
    const std::string key = oracle_key(plan);
    if (oracles.count(key)) continue;
    engine::RunConfig config;
    config.algorithm = plan.algorithm;
    config.options.seed = plan.seed;
    config.source = engine::SourceSpec::InMemory(fixture.stream);
    config.faults = plan.faults;
    engine::RunReport report = engine::Execute(config);
    ASSERT_TRUE(report.completed) << key << ": " << report.error;
    oracles.emplace(key, std::move(report));
  }

  LocalEndpoint endpoint;
  ServerOptions server_options;
  server_options.worker_threads = 3;
  server_options.max_queue = 128;
  server_options.state_dir = state_dir;

  auto server = std::make_unique<SessionServer>(server_options,
                                                endpoint.Listen());
  server->Start();

  // Client fleet: kThreads threads, each running its share of the 1024
  // sessions back to back. A session that fails (server killed under
  // it) is retried whole — idempotent ops and the durable cursor make
  // the re-run converge instead of double-applying.
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> redials{0};
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> threads;
  std::vector<std::vector<Message>> replies(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ClientOptions options;
      options.backoff.max_retries = 4000;  // ride out the whole outage
      options.backoff.initial_delay_us = 1;
      options.backoff.max_delay_us = 64;
      options.backoff.jitter = 0.5;
      options.backoff.jitter_seed = uint64_t(t) + 1;
      options.sleeper = [](uint64_t) { std::this_thread::yield(); };
      SessionClient client([&endpoint](std::string* error) {
        return endpoint.Connect(error);
      }, options);

      for (uint64_t id = uint64_t(t) + 1; id <= kSessions;
           id += kThreads) {
        const Plan plan = PlanFor(id, names);
        OpenBody open;
        open.algorithm = plan.algorithm;
        open.seed = plan.seed;
        open.meta = fixture.stream.meta;
        open.checkpoint_every = 64;
        open.faults = plan.faults;

        Message reply;
        std::string error;
        bool done = false;
        for (int attempt = 0; attempt < 200 && !done; ++attempt) {
          done = RunSessionToCompletion(&client, id, open,
                                        fixture.stream.edges, kBatch,
                                        &reply, &error);
        }
        if (!done) {
          failures[t] = "session " + std::to_string(id) + ": " + error;
          return;
        }
        replies[t].push_back(std::move(reply));
        completed.fetch_add(1);
      }
      // First dial counts as a reconnect; anything beyond it means the
      // client survived a dead link.
      redials.fetch_add(client.Reconnects() - 1);
    });
  }

  // The kill: wait until traffic is genuinely in flight (some sessions
  // done, more mid-stream), then pull the rug — no drain, no final
  // checkpoint sweep — and restart on the same state directory.
  while (completed.load() < kSessions / 8) std::this_thread::yield();
  server->Abort();
  server = std::make_unique<SessionServer>(server_options,
                                           endpoint.Listen());
  server->Start();

  for (auto& thread : threads) thread.join();

  for (int t = 0; t < kThreads; ++t)
    ASSERT_TRUE(failures[t].empty()) << failures[t];
  ASSERT_EQ(completed.load(), kSessions);

  // Bit-identical to the unkilled oracles, session by session.
  for (int t = 0; t < kThreads; ++t) {
    size_t index = 0;
    for (uint64_t id = uint64_t(t) + 1; id <= kSessions;
         id += kThreads, ++index) {
      const Plan plan = PlanFor(id, names);
      const engine::RunReport& expected = oracles.at(oracle_key(plan));
      const Message& reply = replies[t][index];
      ASSERT_EQ(reply.cover, ToU32(expected.solution.cover))
          << "session " << id << " (" << oracle_key(plan) << ")";
      ASSERT_EQ(reply.certificate, ToU32(expected.solution.certificate))
          << "session " << id;
      ASSERT_EQ(reply.edges_delivered, expected.edges_delivered)
          << "session " << id;
      ASSERT_EQ(reply.current_words, expected.current_words)
          << "session " << id;
    }
  }

  // The kill must actually have interrupted live traffic: every client
  // thread held a live connection at Abort time, so every one of them
  // must have redialed at least once. Otherwise this test silently
  // degenerates to a happy-path run.
  EXPECT_GE(redials.load(), uint64_t(kThreads))
      << "the Abort landed between sessions; kill timing lost its bite";

  server->DrainAndStop();
}

}  // namespace
}  // namespace server
}  // namespace setcover
