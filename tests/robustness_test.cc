// Failure-injection / robustness sweep: every registered algorithm is
// subjected to malformed-but-legal stream conditions — duplicated
// edges, infeasible instances (elements that never arrive), wildly
// wrong N metadata, empty sets, extreme shapes — and must never crash,
// never emit an out-of-range id, and always certify what it claims to
// cover.

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "instance/generators.h"
#include "instance/validator.h"
#include "run/run_supervisor.h"
#include "stream/fault_injector.h"
#include "stream/orderings.h"
#include "util/rng.h"

namespace setcover {
namespace {

// Weaker validity: certificates that exist must be sound (in-cover and
// element-containing), but elements may be uncovered (for infeasible
// inputs).
void ExpectPartialSolutionSound(const SetCoverInstance& inst,
                                const CoverSolution& solution,
                                const std::string& context) {
  ASSERT_EQ(solution.certificate.size(), inst.NumElements()) << context;
  std::vector<bool> in_cover(inst.NumSets(), false);
  for (SetId s : solution.cover) {
    ASSERT_LT(s, inst.NumSets()) << context;
    EXPECT_FALSE(in_cover[s]) << context << ": duplicate set in cover";
    in_cover[s] = true;
  }
  for (ElementId u = 0; u < inst.NumElements(); ++u) {
    SetId w = solution.certificate[u];
    if (w == kNoSet) continue;
    ASSERT_LT(w, inst.NumSets()) << context;
    EXPECT_TRUE(in_cover[w]) << context;
    EXPECT_TRUE(inst.Contains(w, u)) << context;
  }
}

class RobustnessSweep : public testing::TestWithParam<std::string> {};

TEST_P(RobustnessSweep, SurvivesDuplicatedEdges) {
  Rng rng(11);
  UniformRandomParams p;
  p.num_elements = 50;
  p.num_sets = 60;
  auto inst = GenerateUniformRandom(p, rng);
  auto stream = RandomOrderStream(inst, rng);
  // Triple every edge, reshuffle.
  std::vector<Edge> tripled;
  for (const Edge& e : stream.edges) {
    tripled.push_back(e);
    tripled.push_back(e);
    tripled.push_back(e);
  }
  rng.Shuffle(tripled);
  EdgeStream noisy = MakeStream(inst, std::move(tripled));

  auto algorithm = MakeAlgorithmByName(GetParam(), {.seed = 3});
  auto solution = RunStream(*algorithm, noisy);
  auto check = ValidateSolution(inst, solution);
  EXPECT_TRUE(check.ok) << GetParam() << ": " << check.error;
}

TEST_P(RobustnessSweep, SurvivesInfeasibleInstances) {
  // Element 49 is in no set; everything else must still be certified.
  std::vector<std::vector<ElementId>> sets(30);
  Rng rng(13);
  for (auto& set : sets) set = rng.RandomSubset(49, 4);
  auto inst = SetCoverInstance::FromSets(50, std::move(sets));
  // Patch coverage of 0..48 manually to keep the rest feasible.
  auto stream = RandomOrderStream(inst, rng);

  auto algorithm = MakeAlgorithmByName(GetParam(), {.seed = 5});
  auto solution = RunStream(*algorithm, stream);
  ExpectPartialSolutionSound(inst, solution, GetParam());
  EXPECT_EQ(solution.certificate[49], kNoSet) << GetParam();
}

TEST_P(RobustnessSweep, SurvivesWrongStreamLengthMetadata) {
  Rng rng(17);
  PlantedCoverParams p;
  p.num_elements = 64;
  p.num_sets = 256;
  p.planted_cover_size = 4;
  auto inst = GeneratePlantedCover(p, rng);
  auto stream = RandomOrderStream(inst, rng);
  for (size_t fake_n : {size_t{1}, size_t{10} * stream.size()}) {
    auto algorithm = MakeAlgorithmByName(GetParam(), {.seed = 7});
    StreamMetadata meta = stream.meta;
    meta.stream_length = fake_n;
    algorithm->Begin(meta);
    for (const Edge& e : stream.edges) algorithm->ProcessEdge(e);
    auto solution = algorithm->Finalize();
    auto check = ValidateSolution(inst, solution);
    EXPECT_TRUE(check.ok)
        << GetParam() << " with N=" << fake_n << ": " << check.error;
  }
}

TEST_P(RobustnessSweep, SurvivesEmptyAndSingletonExtremes) {
  // All-empty sets except one giant set; plus a 1×1 instance.
  std::vector<std::vector<ElementId>> sets(20);
  sets[7].resize(30);
  for (ElementId u = 0; u < 30; ++u) sets[7][u] = u;
  auto giant = SetCoverInstance::FromSets(30, std::move(sets));
  Rng rng(19);
  auto stream = RandomOrderStream(giant, rng);
  auto algorithm = MakeAlgorithmByName(GetParam(), {.seed = 9});
  auto solution = RunStream(*algorithm, stream);
  auto check = ValidateSolution(giant, solution);
  EXPECT_TRUE(check.ok) << GetParam() << ": " << check.error;
  // Probabilistic samplers may carry a few extra (useless) sampled
  // sets, but the cover must stay tiny — every element lives in set 7.
  EXPECT_GE(solution.cover.size(), 1u) << GetParam();
  EXPECT_LE(solution.cover.size(), 20u) << GetParam();

  auto tiny = SetCoverInstance::FromSets(1, {{0}});
  auto tiny_stream = RandomOrderStream(tiny, rng);
  auto algorithm2 = MakeAlgorithmByName(GetParam(), {.seed = 9});
  auto tiny_solution = RunStream(*algorithm2, tiny_stream);
  EXPECT_TRUE(ValidateSolution(tiny, tiny_solution).ok) << GetParam();
}

TEST_P(RobustnessSweep, SurvivesHighMultiplicityElement) {
  // One element in every set (a universal element) — stress for degree
  // counters and heavy-element detection.
  std::vector<std::vector<ElementId>> sets(200);
  Rng rng(23);
  for (auto& set : sets) {
    set = rng.RandomSubset(63, 3);
    set.push_back(63);
  }
  auto inst = SetCoverInstance::FromSets(64, std::move(sets));
  auto stream = RandomOrderStream(inst, rng);
  auto algorithm = MakeAlgorithmByName(GetParam(), {.seed = 11});
  auto solution = RunStream(*algorithm, stream);
  auto check = ValidateSolution(inst, solution);
  EXPECT_TRUE(check.ok) << GetParam() << ": " << check.error;
}

TEST_P(RobustnessSweep, SurvivesEveryFaultKindUnderSupervision) {
  // Dirty-stream torture: transient failures, duplicates, drops and
  // corrupt records all firing, several fixed fault seeds. Supervised
  // runs must complete, stay in range, and certify soundly — dropped
  // records may legitimately leave elements uncovered, nothing more.
  Rng rng(29);
  UniformRandomParams p;
  p.num_elements = 50;
  p.num_sets = 70;
  auto inst = GenerateUniformRandom(p, rng);
  auto stream = RandomOrderStream(inst, rng);

  for (uint64_t fault_seed : {uint64_t{1}, uint64_t{77}, uint64_t{4242}}) {
    VectorEdgeSource base(stream);
    FaultInjector source(&base, FaultSchedule::AllKinds(fault_seed, 0.05));
    auto algorithm = MakeAlgorithmByName(GetParam(), {.seed = 15});
    RunReport report = RunSupervisor({}).Run(*algorithm, source);

    const std::string context =
        GetParam() + " fault_seed=" + std::to_string(fault_seed);
    ASSERT_TRUE(report.completed) << context << ": " << report.error;
    EXPECT_FALSE(report.degraded) << context;
    ExpectPartialSolutionSound(inst, report.solution, context);
    // Accounting lines up with what the injector actually did.
    EXPECT_EQ(report.corrupt_records_skipped,
              source.DeliveredFaults(FaultKind::kCorrupt))
        << context;
    EXPECT_EQ(report.edges_delivered,
              stream.size() + source.DeliveredFaults(FaultKind::kDuplicate) -
                  source.DeliveredFaults(FaultKind::kDrop) -
                  source.DeliveredFaults(FaultKind::kCorrupt))
        << context;
  }
}

TEST_P(RobustnessSweep, FaultSweepIsDeterministic) {
  // The same fault seed must yield the identical cover twice — the
  // property checkpoint resume builds on.
  Rng rng(31);
  UniformRandomParams p;
  p.num_elements = 40;
  p.num_sets = 50;
  auto inst = GenerateUniformRandom(p, rng);
  auto stream = RandomOrderStream(inst, rng);

  CoverSolution first, second;
  for (int round = 0; round < 2; ++round) {
    VectorEdgeSource base(stream);
    FaultInjector source(&base, FaultSchedule::AllKinds(55, 0.06));
    auto algorithm = MakeAlgorithmByName(GetParam(), {.seed = 8});
    RunReport report = RunSupervisor({}).Run(*algorithm, source);
    ASSERT_TRUE(report.completed) << GetParam() << ": " << report.error;
    (round == 0 ? first : second) = report.solution;
  }
  EXPECT_EQ(first.cover, second.cover) << GetParam();
  EXPECT_EQ(first.certificate, second.certificate) << GetParam();
}

std::string SweepName(const testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  std::replace(name.begin(), name.end(), '-', '_');
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, RobustnessSweep,
                         testing::ValuesIn(RegisteredAlgorithmNames()),
                         SweepName);

}  // namespace
}  // namespace setcover
