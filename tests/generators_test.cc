#include "instance/generators.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "instance/validator.h"
#include "util/rng.h"

namespace setcover {
namespace {

TEST(GeneratorsTest, UniformRandomShapeAndFeasibility) {
  Rng rng(1);
  UniformRandomParams params;
  params.num_elements = 50;
  params.num_sets = 30;
  params.min_set_size = 2;
  params.max_set_size = 6;
  auto inst = GenerateUniformRandom(params, rng);
  EXPECT_EQ(inst.NumElements(), 50u);
  EXPECT_EQ(inst.NumSets(), 30u);
  EXPECT_TRUE(inst.IsFeasible());
}

TEST(GeneratorsTest, UniformRandomDeterministicGivenSeed) {
  UniformRandomParams params;
  params.num_elements = 40;
  params.num_sets = 20;
  Rng rng1(9), rng2(9);
  auto a = GenerateUniformRandom(params, rng1);
  auto b = GenerateUniformRandom(params, rng2);
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (SetId s = 0; s < a.NumSets(); ++s) {
    auto sa = a.Set(s), sb = b.Set(s);
    ASSERT_EQ(sa.size(), sb.size());
    EXPECT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin()));
  }
}

TEST(GeneratorsTest, PlantedCoverIsAValidCover) {
  Rng rng(2);
  PlantedCoverParams params;
  params.num_elements = 100;
  params.num_sets = 60;
  params.planted_cover_size = 5;
  auto inst = GeneratePlantedCover(params, rng);
  ASSERT_EQ(inst.PlantedCover().size(), 5u);
  // The planted sets partition the universe.
  std::vector<bool> covered(inst.NumElements(), false);
  size_t total = 0;
  for (SetId s : inst.PlantedCover()) {
    for (ElementId u : inst.Set(s)) {
      EXPECT_FALSE(covered[u]) << "planted sets overlap";
      covered[u] = true;
      ++total;
    }
  }
  EXPECT_EQ(total, inst.NumElements());
}

TEST(GeneratorsTest, PlantedCoverDecoysRespectSizeBounds) {
  Rng rng(3);
  PlantedCoverParams params;
  params.num_elements = 200;
  params.num_sets = 100;
  params.planted_cover_size = 4;
  params.decoy_min_size = 2;
  params.decoy_max_size = 7;
  auto inst = GeneratePlantedCover(params, rng);
  std::vector<bool> planted(inst.NumSets(), false);
  for (SetId s : inst.PlantedCover()) planted[s] = true;
  for (SetId s = 0; s < inst.NumSets(); ++s) {
    if (planted[s]) continue;
    EXPECT_GE(inst.Set(s).size(), 2u);
    EXPECT_LE(inst.Set(s).size(), 7u);
  }
}

TEST(GeneratorsTest, PlantedCoverClampsOversizedRequests) {
  Rng rng(4);
  PlantedCoverParams params;
  params.num_elements = 10;
  params.num_sets = 3;
  params.planted_cover_size = 50;  // > num_sets, must clamp
  auto inst = GeneratePlantedCover(params, rng);
  EXPECT_EQ(inst.PlantedCover().size(), 3u);
  EXPECT_TRUE(inst.IsFeasible());
}

TEST(GeneratorsTest, ZipfFeasibleAndSkewed) {
  Rng rng(5);
  ZipfParams params;
  params.num_elements = 200;
  params.num_sets = 300;
  params.min_set_size = 3;
  params.max_set_size = 10;
  params.exponent = 1.2;
  auto inst = GenerateZipf(params, rng);
  EXPECT_TRUE(inst.IsFeasible());
  auto deg = inst.ElementDegrees();
  // Zipf skew: the most popular decile should far out-degree the least
  // popular decile.
  uint64_t head = 0, tail = 0;
  for (uint32_t u = 0; u < 20; ++u) head += deg[u];
  for (uint32_t u = 180; u < 200; ++u) tail += deg[u];
  EXPECT_GT(head, 3 * tail);
}

TEST(GeneratorsTest, DominatingSetClosedNeighborhoods) {
  Rng rng(6);
  auto inst = GenerateDominatingSet(30, 0.2, rng);
  EXPECT_EQ(inst.NumSets(), 30u);
  EXPECT_EQ(inst.NumElements(), 30u);
  EXPECT_TRUE(inst.IsFeasible());
  // v ∈ N[v]: the reduction's defining property.
  for (SetId v = 0; v < 30; ++v) EXPECT_TRUE(inst.Contains(v, v));
  // Symmetry: u ∈ N[v] iff v ∈ N[u].
  for (SetId v = 0; v < 30; ++v) {
    for (ElementId u : inst.Set(v)) {
      EXPECT_TRUE(inst.Contains(u, v));
    }
  }
}

TEST(GeneratorsTest, DominatingSetEmptyGraph) {
  Rng rng(7);
  auto inst = GenerateDominatingSet(10, 0.0, rng);
  // No edges: every closed neighborhood is the vertex itself.
  for (SetId v = 0; v < 10; ++v) {
    ASSERT_EQ(inst.Set(v).size(), 1u);
    EXPECT_EQ(inst.Set(v)[0], v);
  }
}

TEST(GeneratorsTest, PartitionExactOpt) {
  auto inst = GeneratePartition(100, 10);
  EXPECT_TRUE(inst.IsFeasible());
  size_t total = 0;
  for (SetId s = 0; s < 10; ++s) total += inst.Set(s).size();
  EXPECT_EQ(total, 100u);
}

TEST(GeneratorsTest, LogUniformCoversAllScales) {
  Rng rng(8);
  LogUniformParams params;
  params.num_elements = 512;
  params.num_sets = 4096;
  auto inst = GenerateLogUniform(params, rng);
  EXPECT_TRUE(inst.IsFeasible());
  size_t small = 0, medium = 0, large = 0;
  for (SetId s = 0; s < inst.NumSets(); ++s) {
    size_t size = inst.Set(s).size();
    small += size <= 2 ? 1 : 0;
    medium += (size > 8 && size <= 64) ? 1 : 0;
    large += size > 128 ? 1 : 0;
  }
  // Log-uniform: each factor-2 size band gets ~m/log₂(n) sets.
  EXPECT_GT(small, 400u);
  EXPECT_GT(medium, 400u);
  EXPECT_GT(large, 200u);
}

TEST(GeneratorsTest, LogUniformRespectsMaxSetSize) {
  Rng rng(9);
  LogUniformParams params;
  params.num_elements = 256;
  params.num_sets = 300;
  params.max_set_size = 16;
  auto inst = GenerateLogUniform(params, rng);
  // Patching can push single sets slightly above the cap; sampled
  // sizes themselves are bounded.
  size_t above = 0;
  for (SetId s = 0; s < inst.NumSets(); ++s) {
    above += inst.Set(s).size() > 17 ? 1 : 0;
  }
  EXPECT_LE(above, 3u);
}

TEST(GeneratorsTest, PartitionMoreSetsThanElements) {
  auto inst = GeneratePartition(3, 8);
  EXPECT_EQ(inst.NumSets(), 8u);
  EXPECT_TRUE(inst.IsFeasible());
}

}  // namespace
}  // namespace setcover
