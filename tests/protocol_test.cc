#include "comm/protocol.h"

#include <gtest/gtest.h>

namespace setcover {
namespace {

TEST(ProtocolTest, MessagesFlowInOrder) {
  // Each party appends its index; the final message is the transcript.
  std::vector<PartyFn> parties;
  for (int p = 0; p < 4; ++p) {
    parties.push_back([](uint32_t index, const Message& in) {
      Message out = in;
      out.push_back(index);
      return out;
    });
  }
  auto trace = RunOneWayProtocol(parties);
  ASSERT_EQ(trace.final_message.size(), 4u);
  for (uint32_t i = 0; i < 4; ++i) EXPECT_EQ(trace.final_message[i], i);
}

TEST(ProtocolTest, TracksMaxMessage) {
  std::vector<PartyFn> parties = {
      [](uint32_t, const Message&) { return Message(10); },
      [](uint32_t, const Message&) { return Message(50); },
      [](uint32_t, const Message&) { return Message(5); },
  };
  auto trace = RunOneWayProtocol(parties);
  EXPECT_EQ(trace.max_message_words, 50u);
  ASSERT_EQ(trace.message_words.size(), 3u);
  EXPECT_EQ(trace.message_words[0], 10u);
  EXPECT_EQ(trace.message_words[1], 50u);
  EXPECT_EQ(trace.message_words[2], 5u);
}

TEST(ProtocolTest, FirstPartyReceivesEmptyMessage) {
  bool checked = false;
  std::vector<PartyFn> parties = {
      [&checked](uint32_t index, const Message& in) {
        EXPECT_EQ(index, 0u);
        EXPECT_TRUE(in.empty());
        checked = true;
        return Message{};
      }};
  RunOneWayProtocol(parties);
  EXPECT_TRUE(checked);
}

TEST(ProtocolTest, BitsToWords) {
  EXPECT_EQ(BitsToWords(0), 0u);
  EXPECT_EQ(BitsToWords(1), 1u);
  EXPECT_EQ(BitsToWords(64), 1u);
  EXPECT_EQ(BitsToWords(65), 2u);
  EXPECT_EQ(BitsToWords(1024), 16u);
}

}  // namespace
}  // namespace setcover
