#include "util/flags.h"

#include <gtest/gtest.h>

namespace setcover {
namespace {

FlagSet ParseArgs(std::vector<std::string> args) {
  std::vector<char*> argv;
  for (auto& a : args) argv.push_back(a.data());
  return FlagSet::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsSyntax) {
  auto flags = ParseArgs({"--n=42", "--name=planted"});
  EXPECT_EQ(flags.GetInt("n", 0), 42);
  EXPECT_EQ(flags.GetString("name", ""), "planted");
}

TEST(FlagsTest, SpaceSyntax) {
  auto flags = ParseArgs({"--n", "42", "--name", "zipf"});
  EXPECT_EQ(flags.GetInt("n", 0), 42);
  EXPECT_EQ(flags.GetString("name", ""), "zipf");
}

TEST(FlagsTest, BareFlagIsBooleanTrue) {
  auto flags = ParseArgs({"--verbose", "--n=3"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetInt("n", 0), 3);
}

TEST(FlagsTest, FlagFollowedByFlagIsBoolean) {
  auto flags = ParseArgs({"--verbose", "--debug"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.GetBool("debug", false));
}

TEST(FlagsTest, Defaults) {
  auto flags = ParseArgs({});
  EXPECT_EQ(flags.GetInt("missing", 7), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 2.5), 2.5);
  EXPECT_EQ(flags.GetString("missing", "x"), "x");
  EXPECT_FALSE(flags.GetBool("missing", false));
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagsTest, Positional) {
  auto flags = ParseArgs({"solve", "--n=2", "extra"});
  ASSERT_EQ(flags.Positional().size(), 2u);
  EXPECT_EQ(flags.Positional()[0], "solve");
  EXPECT_EQ(flags.Positional()[1], "extra");
}

TEST(FlagsTest, DoubleParsing) {
  auto flags = ParseArgs({"--alpha=2.75"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha", 0.0), 2.75);
}

TEST(FlagsTest, BoolSpellings) {
  auto flags = ParseArgs({"--a=true", "--b=1", "--c=yes", "--d=false"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_TRUE(flags.GetBool("b", false));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
}

TEST(FlagsTest, UnusedKeysTracksUntouched) {
  auto flags = ParseArgs({"--used=1", "--unused=2"});
  EXPECT_EQ(flags.GetInt("used", 0), 1);
  auto unused = flags.UnusedKeys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "unused");
}

}  // namespace
}  // namespace setcover
