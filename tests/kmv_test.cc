#include "util/kmv.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace setcover {
namespace {

TEST(KmvTest, ExactBelowK) {
  KmvSketch sketch(64, 1);
  for (uint64_t key = 0; key < 50; ++key) sketch.Add(key);
  EXPECT_DOUBLE_EQ(sketch.EstimateDistinct(), 50.0);
}

TEST(KmvTest, DuplicatesDoNotInflate) {
  KmvSketch sketch(64, 2);
  for (int round = 0; round < 100; ++round) {
    for (uint64_t key = 0; key < 30; ++key) sketch.Add(key);
  }
  EXPECT_DOUBLE_EQ(sketch.EstimateDistinct(), 30.0);
}

TEST(KmvTest, EstimatesLargeCardinalityWithinRelativeError) {
  const size_t k = 1024;
  KmvSketch sketch(k, 3);
  const uint64_t distinct = 100000;
  for (uint64_t key = 0; key < distinct; ++key) sketch.Add(key);
  double estimate = sketch.EstimateDistinct();
  // Relative error O(1/√k) ≈ 3%; allow 5σ.
  EXPECT_NEAR(estimate, double(distinct), 0.16 * double(distinct));
}

TEST(KmvTest, MonotoneInDistinctCount) {
  KmvSketch small(256, 4), large(256, 4);
  for (uint64_t key = 0; key < 5000; ++key) small.Add(key);
  for (uint64_t key = 0; key < 50000; ++key) large.Add(key);
  EXPECT_LT(small.EstimateDistinct() * 3, large.EstimateDistinct());
}

TEST(KmvTest, SpaceIsBounded) {
  KmvSketch sketch(128, 5);
  for (uint64_t key = 0; key < 100000; ++key) sketch.Add(key);
  EXPECT_LE(sketch.WordsUsed(), 2 * 128u);
}

TEST(KmvTest, KOneDegenerate) {
  KmvSketch sketch(1, 6);
  sketch.Add(10);
  sketch.Add(20);
  EXPECT_GE(sketch.EstimateDistinct(), 0.0);  // no crash, finite
}

}  // namespace
}  // namespace setcover
