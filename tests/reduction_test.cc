#include "comm/reduction.h"

#include <memory>

#include <gtest/gtest.h>

#include "core/kk_algorithm.h"
#include "core/trivial.h"
#include "util/rng.h"

namespace setcover {
namespace {

// Test fixture parameters kept small: the reduction forks m runs.
constexpr uint32_t kN = 400;
constexpr uint32_t kT = 4;
constexpr uint32_t kM = 16;

AlgorithmFactory ExactishFactory() {
  // StoreEverythingGreedy stands in for an unbounded-space algorithm:
  // with it the reduction must distinguish the two promise cases.
  return [](uint64_t) {
    return std::make_unique<StoreEverythingGreedy>();
  };
}

TEST(ReductionTest, IntersectingCaseYieldsTinyCover) {
  Rng rng(1);
  auto family = Lemma1Family::Build(kN, kT, kM, rng);
  auto disj = GenerateIntersectingInstance(kT, kM, 3, rng);
  auto result = RunTheorem2Reduction(family, disj, ExactishFactory(), 7);
  // Run j* = common element contains the full T_j* and its complement:
  // a cover of size 2 exists, and greedy finds something close.
  EXPECT_LE(result.min_estimate, 4u);
  EXPECT_TRUE(DecideIntersecting(result,
                                 result.disjoint_case_opt_lower_bound));
}

TEST(ReductionTest, DisjointCaseNeedsManySets) {
  Rng rng(2);
  auto family = Lemma1Family::Build(kN, kT, kM, rng);
  auto disj = GenerateDisjointInstance(kT, kM, 3, rng);
  auto result = RunTheorem2Reduction(family, disj, ExactishFactory(), 7);
  EXPECT_GE(result.min_estimate, result.disjoint_case_opt_lower_bound);
  EXPECT_FALSE(DecideIntersecting(result,
                                  result.disjoint_case_opt_lower_bound));
}

TEST(ReductionTest, BoundaryStatesAreMeasured) {
  Rng rng(3);
  auto family = Lemma1Family::Build(kN, kT, kM, rng);
  auto disj = GenerateDisjointInstance(kT, kM, 2, rng);
  auto result = RunTheorem2Reduction(family, disj, ExactishFactory(), 7);
  EXPECT_EQ(result.boundary_state_words.size(), size_t{kT - 1});
  EXPECT_GT(result.max_boundary_state_words, 0u);
  for (size_t w : result.boundary_state_words) {
    EXPECT_LE(w, result.max_boundary_state_words);
  }
}

TEST(ReductionTest, StateGrowsWithM) {
  // The forwarded state of an exact algorithm must scale with the
  // instance — the resource Theorem 5 lower-bounds by Ω(m/t²).
  Rng rng(4);
  auto small_family = Lemma1Family::Build(kN, kT, 8, rng);
  auto small_disj = GenerateDisjointInstance(kT, 8, 2, rng);
  auto small = RunTheorem2Reduction(small_family, small_disj,
                                    ExactishFactory(), 7);
  auto large_family = Lemma1Family::Build(kN, kT, 32, rng);
  auto large_disj = GenerateDisjointInstance(kT, 32, 8, rng);
  auto large = RunTheorem2Reduction(large_family, large_disj,
                                    ExactishFactory(), 7);
  EXPECT_GT(large.max_boundary_state_words,
            2 * small.max_boundary_state_words);
}

TEST(ReductionTest, FortSubsetRunsOnlyThoseForks) {
  Rng rng(5);
  auto family = Lemma1Family::Build(kN, kT, kM, rng);
  auto disj = GenerateIntersectingInstance(kT, kM, 3, rng);
  // Fork only on the common element: must still detect it.
  auto result = RunTheorem2Reduction(family, disj, ExactishFactory(), 7,
                                     {disj.common_element});
  EXPECT_LE(result.min_estimate, 4u);
  EXPECT_EQ(result.argmin_fork, 0u);
}

TEST(ReductionTest, StreamingStateFlatWhileExactStateGrows) {
  // The KK algorithm forwards Õ(m + n) words regardless of how much of
  // the stream has passed; an exact algorithm's state grows with the
  // stream. Doubling every party's load must show up in the exact
  // state and barely move the KK state.
  Rng rng(6);
  auto family = Lemma1Family::Build(kN, kT, kM, rng);
  auto light = GenerateDisjointInstance(kT, kM, 2, rng);
  auto heavy = GenerateDisjointInstance(kT, kM, 4, rng);
  AlgorithmFactory kk = [](uint64_t seed) {
    return std::make_unique<KkAlgorithm>(seed);
  };
  auto exact_light =
      RunTheorem2Reduction(family, light, ExactishFactory(), 7);
  auto exact_heavy =
      RunTheorem2Reduction(family, heavy, ExactishFactory(), 7);
  EXPECT_GE(exact_heavy.max_boundary_state_words,
            2 * exact_light.max_boundary_state_words - 4);

  auto kk_light = RunTheorem2Reduction(family, light, kk, 7);
  auto kk_heavy = RunTheorem2Reduction(family, heavy, kk, 7);
  double growth = double(kk_heavy.max_boundary_state_words) /
                  double(kk_light.max_boundary_state_words);
  EXPECT_LT(growth, 1.2);
}

TEST(ReductionTest, DeterministicReplayGivesConsistentEstimates) {
  Rng rng(7);
  auto family = Lemma1Family::Build(kN, kT, kM, rng);
  auto disj = GenerateIntersectingInstance(kT, kM, 3, rng);
  auto r1 = RunTheorem2Reduction(family, disj, ExactishFactory(), 9);
  auto r2 = RunTheorem2Reduction(family, disj, ExactishFactory(), 9);
  EXPECT_EQ(r1.min_estimate, r2.min_estimate);
  EXPECT_EQ(r1.argmin_fork, r2.argmin_fork);
  EXPECT_EQ(r1.boundary_state_words, r2.boundary_state_words);
}

}  // namespace
}  // namespace setcover
