#include "comm/deterministic_protocol.h"

#include <cmath>

#include <gtest/gtest.h>

#include "comm/protocol.h"
#include "instance/generators.h"
#include "instance/validator.h"
#include "util/rng.h"

namespace setcover {
namespace {

std::vector<uint32_t> RoundRobinOwners(uint32_t num_sets,
                                       uint32_t num_parties) {
  std::vector<uint32_t> owners(num_sets);
  for (uint32_t s = 0; s < num_sets; ++s) owners[s] = s % num_parties;
  return owners;
}

TEST(DeterministicProtocolTest, ProducesValidCover) {
  Rng rng(1);
  PlantedCoverParams params;
  params.num_elements = 120;
  params.num_sets = 80;
  params.planted_cover_size = 4;
  auto inst = GeneratePlantedCover(params, rng);
  auto result =
      RunDeterministicProtocol(inst, RoundRobinOwners(80, 4), 4);
  auto check = ValidateSolution(inst, result.solution);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(DeterministicProtocolTest, ApproximationWithinTwoSqrtNT) {
  Rng rng(2);
  const uint32_t n = 256, t = 4;
  PlantedCoverParams params;
  params.num_elements = n;
  params.num_sets = 400;
  params.planted_cover_size = 4;
  params.decoy_max_size = 4;
  auto inst = GeneratePlantedCover(params, rng);
  auto result =
      RunDeterministicProtocol(inst, RoundRobinOwners(400, t), t);
  double bound = 2.0 * std::sqrt(double(n) * t);
  EXPECT_LE(double(result.solution.cover.size()),
            bound * double(inst.PlantedCover().size()));
}

TEST(DeterministicProtocolTest, MessageIsLinearInN) {
  Rng rng(3);
  const uint32_t n = 200;
  UniformRandomParams params;
  params.num_elements = n;
  params.num_sets = 5000;  // m ≫ n: message must not scale with m
  params.max_set_size = 4;
  auto inst = GenerateUniformRandom(params, rng);
  auto result = RunDeterministicProtocol(
      inst, RoundRobinOwners(inst.NumSets(), 8), 8);
  EXPECT_TRUE(ValidateSolution(inst, result.solution).ok);
  // bitmap words + n patch words + solution (≤ n after patch dedup).
  EXPECT_LE(result.max_message_words, BitsToWords(n) + 2u * n + 64u);
}

TEST(DeterministicProtocolTest, ThresholdSetCountBounded) {
  Rng rng(4);
  const uint32_t n = 144, t = 4;
  UniformRandomParams params;
  params.num_elements = n;
  params.num_sets = 300;
  params.max_set_size = 40;
  auto inst = GenerateUniformRandom(params, rng);
  auto result = RunDeterministicProtocol(
      inst, RoundRobinOwners(inst.NumSets(), t), t);
  // Threshold-greedy adds at most t·n/τ = √(n·t) sets.
  double tau = std::sqrt(double(n) * t);
  EXPECT_LE(double(result.threshold_sets),
            double(t) * double(n) / tau + 1.0);
}

TEST(DeterministicProtocolTest, SinglePartyIsThresholdGreedy) {
  auto inst = SetCoverInstance::FromSets(
      9, {{0, 1, 2, 3, 4, 5, 6, 7, 8}, {0}, {1}});
  auto result =
      RunDeterministicProtocol(inst, {0, 0, 0}, 1, /*threshold=*/3);
  EXPECT_EQ(result.solution.cover.size(), 1u);
  EXPECT_EQ(result.threshold_sets, 1u);
  EXPECT_EQ(result.patched_sets, 0u);
}

TEST(DeterministicProtocolTest, PurePatchingWhenAllSetsSmall) {
  auto inst = GeneratePartition(16, 8);  // blocks of 2
  auto result = RunDeterministicProtocol(inst, RoundRobinOwners(8, 2), 2,
                                         /*threshold=*/10);
  EXPECT_EQ(result.threshold_sets, 0u);
  EXPECT_EQ(result.patched_sets, 8u);
  EXPECT_TRUE(ValidateSolution(inst, result.solution).ok);
}

TEST(DeterministicProtocolTest, DeterministicAcrossRuns) {
  Rng rng(5);
  UniformRandomParams params;
  params.num_elements = 60;
  params.num_sets = 90;
  auto inst = GenerateUniformRandom(params, rng);
  auto owners = RoundRobinOwners(90, 3);
  auto r1 = RunDeterministicProtocol(inst, owners, 3);
  auto r2 = RunDeterministicProtocol(inst, owners, 3);
  EXPECT_EQ(r1.solution.cover, r2.solution.cover);
  EXPECT_EQ(r1.max_message_words, r2.max_message_words);
}

}  // namespace
}  // namespace setcover
