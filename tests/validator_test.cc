#include "instance/validator.h"

#include <cmath>

#include <gtest/gtest.h>

namespace setcover {
namespace {

SetCoverInstance TestInstance() {
  // U = {0..4}; S0={0,1}, S1={1,2,3}, S2={4}, S3={0,4}.
  return SetCoverInstance::FromSets(5, {{0, 1}, {1, 2, 3}, {4}, {0, 4}});
}

TEST(ValidatorTest, AcceptsValidSolution) {
  auto inst = TestInstance();
  CoverSolution sol;
  sol.cover = {0, 1, 2};
  sol.certificate = {0, 0, 1, 1, 2};
  auto result = ValidateSolution(inst, sol);
  EXPECT_TRUE(result.ok) << result.error;
}

TEST(ValidatorTest, RejectsMissingCertificate) {
  auto inst = TestInstance();
  CoverSolution sol;
  sol.cover = {0, 1, 2};
  sol.certificate = {0, 0, 1, 1, kNoSet};
  auto result = ValidateSolution(inst, sol);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("no certificate"), std::string::npos);
}

TEST(ValidatorTest, RejectsCertificateNotInCover) {
  auto inst = TestInstance();
  CoverSolution sol;
  sol.cover = {0, 1, 2};
  sol.certificate = {3, 0, 1, 1, 2};  // set 3 covers 0 but isn't in cover
  auto result = ValidateSolution(inst, sol);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("not in cover"), std::string::npos);
}

TEST(ValidatorTest, RejectsCertificateSetNotContainingElement) {
  auto inst = TestInstance();
  CoverSolution sol;
  sol.cover = {0, 1, 2};
  sol.certificate = {0, 0, 1, 2, 2};  // set 2 = {4} does not contain 3
  auto result = ValidateSolution(inst, sol);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("does not contain"), std::string::npos);
}

TEST(ValidatorTest, RejectsDuplicateCoverEntries) {
  auto inst = TestInstance();
  CoverSolution sol;
  sol.cover = {0, 0, 1, 2};
  sol.certificate = {0, 0, 1, 1, 2};
  auto result = ValidateSolution(inst, sol);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("duplicate"), std::string::npos);
}

TEST(ValidatorTest, RejectsOutOfRangeCoverSet) {
  auto inst = TestInstance();
  CoverSolution sol;
  sol.cover = {0, 17};
  sol.certificate = {0, 0, 0, 0, 0};
  auto result = ValidateSolution(inst, sol);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("out-of-range"), std::string::npos);
}

TEST(ValidatorTest, RejectsWrongCertificateLength) {
  auto inst = TestInstance();
  CoverSolution sol;
  sol.cover = {0};
  sol.certificate = {0, 0};
  auto result = ValidateSolution(inst, sol);
  EXPECT_FALSE(result.ok);
}

TEST(ValidatorTest, ApproxRatio) {
  CoverSolution sol;
  sol.cover = {1, 2, 3, 4, 5, 6};
  EXPECT_DOUBLE_EQ(ApproxRatio(sol, 2), 3.0);
  EXPECT_DOUBLE_EQ(ApproxRatio(sol, 6), 1.0);
  EXPECT_TRUE(std::isinf(ApproxRatio(sol, 0)));
}

}  // namespace
}  // namespace setcover
