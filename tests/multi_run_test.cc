#include "core/multi_run.h"

#include <gtest/gtest.h>

#include "core/kk_algorithm.h"
#include "instance/generators.h"
#include "tests/test_util.h"

namespace setcover {
namespace {

SetCoverInstance PlantedInstance(uint32_t n, uint32_t m, uint32_t opt,
                                 uint64_t seed) {
  Rng rng(seed);
  PlantedCoverParams params;
  params.num_elements = n;
  params.num_sets = m;
  params.planted_cover_size = opt;
  params.decoy_max_size = 4;
  return GeneratePlantedCover(params, rng);
}

TEST(BestOfRunsTest, NeverWorseThanASingleRun) {
  auto inst = PlantedInstance(128, 512, 4, 1);
  Rng rng(2);
  auto stream = RandomOrderStream(inst, rng);
  AlgorithmFactory factory = [](uint64_t seed) {
    return std::make_unique<KkAlgorithm>(seed);
  };
  auto single = factory(100);
  auto single_sol = RunStream(*single, stream);
  auto best = BestOfRuns(factory, 8, 100, stream);
  EXPECT_LE(best.cover.size(), single_sol.cover.size());
  EXPECT_TRUE(ValidateSolution(inst, best).ok);
}

TEST(BestOfRunsTest, ReportsSummedSpace) {
  auto inst = PlantedInstance(64, 256, 3, 2);
  Rng rng(3);
  auto stream = RandomOrderStream(inst, rng);
  AlgorithmFactory factory = [](uint64_t seed) {
    return std::make_unique<KkAlgorithm>(seed);
  };
  size_t total = 0;
  BestOfRuns(factory, 4, 7, stream, &total);
  auto one = factory(7);
  RunStream(*one, stream);
  EXPECT_GE(total, 4 * (one->Meter().PeakWords() / 2));
}

TEST(BestOfRunsTest, SingleRunDegenerate) {
  auto inst = PlantedInstance(32, 64, 2, 3);
  Rng rng(4);
  auto stream = RandomOrderStream(inst, rng);
  AlgorithmFactory factory = [](uint64_t seed) {
    return std::make_unique<KkAlgorithm>(seed);
  };
  auto best = BestOfRuns(factory, 1, 5, stream);
  EXPECT_TRUE(ValidateSolution(inst, best).ok);
}

TEST(NGuessRandomOrderTest, ValidCoverWithoutKnowingN) {
  auto inst = PlantedInstance(100, 1000, 4, 4);
  Rng rng(5);
  auto stream = RandomOrderStream(inst, rng);
  NGuessRandomOrder algorithm(9);
  // Deliberately hand the wrapper a bogus N: it must not rely on it.
  StreamMetadata meta = stream.meta;
  meta.stream_length = 0;
  algorithm.Begin(meta);
  for (const Edge& e : stream.edges) algorithm.ProcessEdge(e);
  auto sol = algorithm.Finalize();
  EXPECT_TRUE(ValidateSolution(inst, sol).ok);
  EXPECT_GE(algorithm.NumGuesses(), 3u);
}

TEST(NGuessRandomOrderTest, GuessCountIsLogarithmic) {
  auto inst = PlantedInstance(256, 2048, 4, 5);
  Rng rng(6);
  auto stream = RandomOrderStream(inst, rng);
  NGuessRandomOrder algorithm(11);
  algorithm.Begin(stream.meta);
  // N ranges over [m/√n, m·n]: log2(n^1.5) ≈ 12 guesses.
  EXPECT_LE(algorithm.NumGuesses(), 16u);
  for (const Edge& e : stream.edges) algorithm.ProcessEdge(e);
  EXPECT_TRUE(ValidateSolution(inst, algorithm.Finalize()).ok);
}

TEST(NGuessRandomOrderTest, MeterAggregatesRuns) {
  auto inst = PlantedInstance(64, 512, 3, 6);
  Rng rng(7);
  auto stream = RandomOrderStream(inst, rng);
  NGuessRandomOrder algorithm(13);
  algorithm.Begin(stream.meta);
  for (const Edge& e : stream.edges) algorithm.ProcessEdge(e);
  algorithm.Finalize();
  // The wrapper must charge at least one run's element state per guess.
  EXPECT_GE(algorithm.Meter().PeakWords(),
            algorithm.NumGuesses() * size_t(2 * 64));
}

}  // namespace
}  // namespace setcover
