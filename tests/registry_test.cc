#include "core/registry.h"

#include <gtest/gtest.h>

#include "instance/generators.h"
#include "instance/validator.h"
#include "stream/orderings.h"
#include "util/rng.h"

namespace setcover {
namespace {

TEST(RegistryTest, EveryRegisteredNameConstructs) {
  for (const std::string& name : RegisteredAlgorithmNames()) {
    auto algorithm = MakeAlgorithmByName(name);
    ASSERT_NE(algorithm, nullptr) << name;
    EXPECT_FALSE(algorithm->Name().empty());
  }
}

TEST(RegistryTest, UnknownNameReturnsNull) {
  EXPECT_EQ(MakeAlgorithmByName("no-such-algorithm"), nullptr);
  EXPECT_EQ(MakeAlgorithmByName(""), nullptr);
}

TEST(RegistryTest, EveryRegisteredAlgorithmSolves) {
  Rng rng(1);
  PlantedCoverParams params;
  params.num_elements = 64;
  params.num_sets = 256;
  params.planted_cover_size = 4;
  auto inst = GeneratePlantedCover(params, rng);
  auto stream = RandomOrderStream(inst, rng);
  for (const std::string& name : RegisteredAlgorithmNames()) {
    auto algorithm = MakeAlgorithmByName(name, {.seed = 5});
    ASSERT_NE(algorithm, nullptr);
    auto solution = RunStream(*algorithm, stream);
    auto check = ValidateSolution(inst, solution);
    EXPECT_TRUE(check.ok) << name << ": " << check.error;
  }
}

TEST(RegistryTest, AlphaOptionReachesAlgorithms) {
  auto a = MakeAlgorithmByName("element-sampling", {.seed = 1, .alpha = 4});
  auto b = MakeAlgorithmByName("element-sampling", {.seed = 1, .alpha = 16});
  StreamMetadata meta{1024, 256, 4096};
  a->Begin(meta);
  b->Begin(meta);
  // Smaller α → bigger sample → more element-state words.
  EXPECT_GT(a->Meter().CurrentWords(), 0u);
  EXPECT_GT(b->Meter().CurrentWords(), 0u);
}

TEST(RegistryTest, SeedsArehonored) {
  Rng rng(2);
  PlantedCoverParams params;
  params.num_elements = 64;
  params.num_sets = 128;
  params.planted_cover_size = 4;
  auto inst = GeneratePlantedCover(params, rng);
  auto stream = RandomOrderStream(inst, rng);
  auto a1 = MakeAlgorithmByName("kk", {.seed = 9});
  auto a2 = MakeAlgorithmByName("kk", {.seed = 9});
  EXPECT_EQ(RunStream(*a1, stream).cover, RunStream(*a2, stream).cover);
}

}  // namespace
}  // namespace setcover
