#include "core/registry.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "instance/generators.h"
#include "instance/validator.h"
#include "stream/orderings.h"
#include "util/rng.h"

namespace setcover {
namespace {

TEST(RegistryTest, EveryRegisteredNameConstructs) {
  for (const std::string& name : RegisteredAlgorithmNames()) {
    auto algorithm = MakeAlgorithmByName(name);
    ASSERT_NE(algorithm, nullptr) << name;
    EXPECT_FALSE(algorithm->Name().empty());
  }
}

TEST(RegistryTest, UnknownNameReturnsNull) {
  EXPECT_EQ(MakeAlgorithmByName("no-such-algorithm"), nullptr);
  EXPECT_EQ(MakeAlgorithmByName(""), nullptr);
}

TEST(RegistryTest, EveryRegisteredAlgorithmSolves) {
  Rng rng(1);
  PlantedCoverParams params;
  params.num_elements = 64;
  params.num_sets = 256;
  params.planted_cover_size = 4;
  auto inst = GeneratePlantedCover(params, rng);
  auto stream = RandomOrderStream(inst, rng);
  for (const std::string& name : RegisteredAlgorithmNames()) {
    auto algorithm = MakeAlgorithmByName(name, {.seed = 5});
    ASSERT_NE(algorithm, nullptr);
    auto solution = RunStream(*algorithm, stream);
    auto check = ValidateSolution(inst, solution);
    EXPECT_TRUE(check.ok) << name << ": " << check.error;
  }
}

TEST(RegistryTest, AlphaOptionReachesAlgorithms) {
  auto a = MakeAlgorithmByName("element-sampling", {.seed = 1, .alpha = 4});
  auto b = MakeAlgorithmByName("element-sampling", {.seed = 1, .alpha = 16});
  StreamMetadata meta{1024, 256, 4096};
  a->Begin(meta);
  b->Begin(meta);
  // Smaller α → bigger sample → more element-state words.
  EXPECT_GT(a->Meter().CurrentWords(), 0u);
  EXPECT_GT(b->Meter().CurrentWords(), 0u);
}

TEST(RegistryTest, EveryRowIsSelfDescribing) {
  for (const AlgorithmInfo& info : AlgorithmRegistry()) {
    EXPECT_FALSE(info.name.empty());
    EXPECT_FALSE(info.description.empty()) << info.name;
    EXPECT_FALSE(info.space_class.empty()) << info.name;
    EXPECT_FALSE(info.approx_class.empty()) << info.name;
    EXPECT_FALSE(info.supported_orders.empty()) << info.name;
    ASSERT_NE(info.factory, nullptr) << info.name;
    EXPECT_EQ(FindAlgorithm(info.name), &info);
  }
  EXPECT_EQ(AlgorithmRegistry().size(), RegisteredAlgorithmNames().size());
  EXPECT_EQ(FindAlgorithm("no-such-algorithm"), nullptr);
}

TEST(RegistryTest, FactoryNameIsPrefixOfRegistryName) {
  // Checkpoints key off the constructed object's Name(). Parameterized
  // variants (random-order-sketch, random-order-paper) intentionally
  // report the base algorithm's name — their state layouts are
  // interchangeable — so the registry name is always an extension of
  // the object name, never unrelated.
  for (const AlgorithmInfo& info : AlgorithmRegistry()) {
    EXPECT_EQ(info.name.rfind(info.factory({})->Name(), 0), 0u) << info.name;
  }
}

TEST(RegistryTest, ShardableCapabilityMarksExactlyTheShardableRows) {
  // The two rows that cannot serve as per-shard workers: the parallel
  // multi-run wrapper and the Theta(N)-buffering comparator.
  const std::vector<std::string> shardable = ShardableAlgorithmNames();
  for (const AlgorithmInfo& info : AlgorithmRegistry()) {
    const bool expected = info.name != "random-order-nguess" &&
                          info.name != "store-everything-greedy";
    EXPECT_EQ(info.shardable, expected) << info.name;
    const bool listed = std::find(shardable.begin(), shardable.end(),
                                  info.name) != shardable.end();
    EXPECT_EQ(listed, expected) << info.name;
  }
}

TEST(RegistryTest, NotShardableErrorIsActionable) {
  const std::string message = NotShardableError("store-everything-greedy");
  EXPECT_NE(message.find("'store-everything-greedy' is not shardable"),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("--shards"), std::string::npos) << message;
  // Every shardable name is offered as the alternative; the unshardable
  // wrapper is not.
  for (const std::string& name : ShardableAlgorithmNames()) {
    EXPECT_NE(message.find(name), std::string::npos) << name;
  }
  EXPECT_EQ(message.find("random-order-nguess"), std::string::npos)
      << message;
}

TEST(RegistryTest, SuggestsNearestNameForTypos) {
  EXPECT_EQ(SuggestAlgorithmName("kkk"), "kk");
  EXPECT_EQ(SuggestAlgorithmName("random-ordr"), "random-order");
  EXPECT_EQ(SuggestAlgorithmName("element-samplign"), "element-sampling");
  // Exact names suggest themselves; garbage suggests nothing.
  EXPECT_EQ(SuggestAlgorithmName("kk"), "kk");
  EXPECT_EQ(SuggestAlgorithmName("zzzzzzzzzzzzzzzz"), "");
  EXPECT_EQ(SuggestAlgorithmName(""), "");
}

TEST(RegistryTest, UnknownAlgorithmErrorListsNamesAndSuggestion) {
  const std::string message = UnknownAlgorithmError("random-ordr");
  EXPECT_NE(message.find("did you mean 'random-order'"), std::string::npos)
      << message;
  for (const std::string& name : RegisteredAlgorithmNames()) {
    EXPECT_NE(message.find(name), std::string::npos) << name;
  }
}

TEST(RegistryTest, SeedsArehonored) {
  Rng rng(2);
  PlantedCoverParams params;
  params.num_elements = 64;
  params.num_sets = 128;
  params.planted_cover_size = 4;
  auto inst = GeneratePlantedCover(params, rng);
  auto stream = RandomOrderStream(inst, rng);
  auto a1 = MakeAlgorithmByName("kk", {.seed = 9});
  auto a2 = MakeAlgorithmByName("kk", {.seed = 9});
  EXPECT_EQ(RunStream(*a1, stream).cover, RunStream(*a2, stream).cover);
}

}  // namespace
}  // namespace setcover
