// The fault injector's whole value is determinism: the same schedule
// over the same stream must damage it identically, and seeking back to
// a checkpointed position must replay the identical damaged suffix —
// that is what makes kill-and-resume bit-exact even on dirty streams.

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "instance/generators.h"
#include "stream/fault_injector.h"
#include "stream/orderings.h"
#include "util/rng.h"

namespace setcover {
namespace {

EdgeStream TestStream(uint64_t seed = 29) {
  Rng rng(seed);
  UniformRandomParams p;
  p.num_elements = 80;
  p.num_sets = 100;
  auto inst = GenerateUniformRandom(p, rng);
  return RandomOrderStream(inst, rng);
}

// One observable event: status plus the delivered edge (zeroed when the
// status carries no edge).
using Event = std::tuple<ReadStatus, uint32_t, uint32_t>;

std::vector<Event> Drain(FaultInjector& injector) {
  std::vector<Event> events;
  for (;;) {
    Edge edge{0, 0};
    ReadStatus status = injector.Next(&edge);
    if (status == ReadStatus::kTransient || status == ReadStatus::kEnd)
      events.emplace_back(status, 0, 0);
    else
      events.emplace_back(status, edge.set, edge.element);
    if (status == ReadStatus::kEnd) return events;
  }
}

TEST(FaultInjectorTest, SameScheduleSameDamage) {
  EdgeStream stream = TestStream();
  VectorEdgeSource source1(stream), source2(stream);
  FaultInjector injector1(&source1, FaultSchedule::AllKinds(41, 0.05));
  FaultInjector injector2(&source2, FaultSchedule::AllKinds(41, 0.05));
  EXPECT_EQ(Drain(injector1), Drain(injector2));
}

TEST(FaultInjectorTest, DifferentSeedsDamageDifferently) {
  EdgeStream stream = TestStream();
  VectorEdgeSource source1(stream), source2(stream);
  FaultInjector injector1(&source1, FaultSchedule::AllKinds(41, 0.05));
  FaultInjector injector2(&source2, FaultSchedule::AllKinds(42, 0.05));
  EXPECT_NE(Drain(injector1), Drain(injector2));
}

TEST(FaultInjectorTest, SeekReplaysTheIdenticalFaultSuffix) {
  EdgeStream stream = TestStream();
  VectorEdgeSource source(stream);
  FaultInjector injector(&source, FaultSchedule::AllKinds(7, 0.08));

  // Full trace, remembering (position, events-so-far) at every point
  // where a position-based checkpoint would be legal.
  std::vector<Event> full;
  std::vector<std::pair<size_t, size_t>> boundaries;
  for (;;) {
    Edge edge{0, 0};
    ReadStatus status = injector.Next(&edge);
    if (status == ReadStatus::kTransient || status == ReadStatus::kEnd)
      full.emplace_back(status, 0, 0);
    else
      full.emplace_back(status, edge.set, edge.element);
    if (status == ReadStatus::kEnd) break;
    if (!injector.HasPendingReplay())
      boundaries.emplace_back(injector.Position(), full.size());
  }
  ASSERT_GT(boundaries.size(), 10u);

  for (size_t i = 0; i < boundaries.size(); i += boundaries.size() / 7) {
    auto [position, consumed] = boundaries[i];
    VectorEdgeSource replay_source(stream);
    FaultInjector replay(&replay_source, FaultSchedule::AllKinds(7, 0.08));
    ASSERT_TRUE(replay.SeekTo(position));
    std::vector<Event> suffix = Drain(replay);
    ASSERT_EQ(suffix.size(), full.size() - consumed) << "cut " << i;
    for (size_t j = 0; j < suffix.size(); ++j)
      EXPECT_EQ(suffix[j], full[consumed + j]) << "cut " << i << " event "
                                               << j;
  }
}

TEST(FaultInjectorTest, AllFaultKindsActuallyFire) {
  EdgeStream stream = TestStream(31);
  VectorEdgeSource source(stream);
  FaultInjector injector(&source, FaultSchedule::AllKinds(5, 0.06));
  std::vector<Event> events = Drain(injector);

  EXPECT_GT(injector.DeliveredFaults(FaultKind::kTransient), 0u);
  EXPECT_GT(injector.DeliveredFaults(FaultKind::kDuplicate), 0u);
  EXPECT_GT(injector.DeliveredFaults(FaultKind::kDrop), 0u);
  EXPECT_GT(injector.DeliveredFaults(FaultKind::kCorrupt), 0u);

  // Conservation: every underlying record is delivered once, plus one
  // extra per duplicate, minus dropped ones; corrupt deliveries are
  // flagged, never silent.
  size_t ok = 0, corrupt = 0;
  for (const auto& [status, set, element] : events) {
    if (status == ReadStatus::kOk) ++ok;
    if (status == ReadStatus::kCorrupt) {
      ++corrupt;
      EXPECT_TRUE(set >= stream.meta.num_sets ||
                  element >= stream.meta.num_elements)
          << "corrupt record not detectably out of range";
    }
  }
  EXPECT_EQ(ok, stream.size() +
                    injector.DeliveredFaults(FaultKind::kDuplicate) -
                    injector.DeliveredFaults(FaultKind::kDrop) -
                    injector.DeliveredFaults(FaultKind::kCorrupt));
  EXPECT_EQ(corrupt, injector.DeliveredFaults(FaultKind::kCorrupt));
}

TEST(FaultInjectorTest, DuplicateDeliversTheSameRecordTwice) {
  EdgeStream stream = TestStream();
  VectorEdgeSource source(stream);
  FaultSchedule schedule;
  schedule.seed = 3;
  schedule.duplicate_rate = 1.0;
  FaultInjector injector(&source, schedule);

  for (size_t i = 0; i < stream.size(); ++i) {
    Edge first{0, 0}, second{0, 0};
    ASSERT_EQ(injector.Next(&first), ReadStatus::kOk);
    EXPECT_TRUE(injector.HasPendingReplay());
    ASSERT_EQ(injector.Next(&second), ReadStatus::kOk);
    EXPECT_FALSE(injector.HasPendingReplay());
    EXPECT_EQ(first.set, second.set);
    EXPECT_EQ(first.element, second.element);
  }
  Edge edge;
  EXPECT_EQ(injector.Next(&edge), ReadStatus::kEnd);
}

TEST(FaultInjectorTest, TransientFailsExactlyConfiguredTimes) {
  EdgeStream stream = TestStream();
  VectorEdgeSource source(stream);
  FaultSchedule schedule;
  schedule.seed = 3;
  schedule.transient_rate = 1.0;
  schedule.transient_failures = 3;
  FaultInjector injector(&source, schedule);

  Edge edge;
  for (size_t i = 0; i < stream.size(); ++i) {
    for (int f = 0; f < 3; ++f)
      ASSERT_EQ(injector.Next(&edge), ReadStatus::kTransient) << i;
    ASSERT_EQ(injector.Next(&edge), ReadStatus::kOk) << i;
    EXPECT_EQ(edge.set, stream.edges[i].set);
    EXPECT_EQ(edge.element, stream.edges[i].element);
  }
}

TEST(FaultInjectorTest, DropOnlyScheduleLosesEverything) {
  EdgeStream stream = TestStream();
  VectorEdgeSource source(stream);
  FaultSchedule schedule;
  schedule.seed = 3;
  schedule.drop_rate = 1.0;
  FaultInjector injector(&source, schedule);
  Edge edge;
  EXPECT_EQ(injector.Next(&edge), ReadStatus::kEnd);
  EXPECT_EQ(injector.DeliveredFaults(FaultKind::kDrop), stream.size());
}

}  // namespace
}  // namespace setcover
