// Cross-backend equivalence — the acceptance bar for the engine's
// execution-substrate seam (engine/backend.h). For every shardable
// algorithm: (a) {inprocess, sharded, forked} produce bit-identical
// covers, certificates, and counters at W = 1; (b) sharded and forked
// agree exactly at W = 3, merge accounting included; (c) the
// checkpoint sidecars the substrates write mid-run are byte-identical
// files, W = 1 (plain SCKP) and W = 3 (SCSH) both; (d) killing one
// forked worker *process* mid-stream surfaces as a dead-worker error
// whose aggregate checkpoint resumes to the unkilled run's exact
// result. Plus: stream schedules (multi-pass and sliding-window) as
// composable source backends across substrates, the ShardedSession
// push-side counterpart, backend dispatch and registry, and the
// windowed-schedule checkpoint rejection.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "engine/backend.h"
#include "engine/engine.h"
#include "engine/sharded_session.h"
#include "instance/generators.h"
#include "instance/validator.h"
#include "stream/orderings.h"
#include "stream/stream_file.h"
#include "util/rng.h"

namespace setcover {
namespace {

struct Fixture {
  SetCoverInstance instance;
  EdgeStream stream;
};

/// The sharded_engine_test planted fixture: known OPT, decoy sets,
/// enough edges that every shard of a W=3 split sees hundreds.
Fixture MakePlantedFixture(uint64_t seed) {
  Rng rng(seed);
  PlantedCoverParams p;
  p.num_elements = 120;
  p.num_sets = 600;
  p.planted_cover_size = 6;
  Fixture fixture{GeneratePlantedCover(p, rng), {}};
  fixture.stream = RandomOrderStream(fixture.instance, rng);
  return fixture;
}

std::string TempPath(const std::string& tag) {
  std::string name = "backend_" + tag;
  for (char& c : name)
    if (c == '-') c = '_';
  return testing::TempDir() + name;
}

engine::RunConfig BaseConfig(const std::string& algorithm,
                             const EdgeStream& stream,
                             const std::string& backend, uint32_t workers) {
  engine::RunConfig config;
  config.algorithm = algorithm;
  config.options.seed = 21;
  config.source = engine::SourceSpec::InMemory(stream);
  config.backend.name = backend;
  config.backend.workers = workers;
  return config;
}

void ExpectSameSolution(const engine::RunReport& actual,
                        const engine::RunReport& expected,
                        const std::string& context) {
  EXPECT_EQ(actual.solution.cover, expected.solution.cover) << context;
  EXPECT_EQ(actual.solution.certificate, expected.solution.certificate)
      << context;
  EXPECT_EQ(actual.edges_delivered, expected.edges_delivered) << context;
  EXPECT_EQ(actual.uncovered_elements, expected.uncovered_elements)
      << context;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  return bytes.str();
}

class BackendSweep : public testing::TestWithParam<std::string> {};

// (a) W = 1: all three substrates are the same run — covers,
// certificates, counters, meter readings, batch counts.
TEST_P(BackendSweep, BackendsBitIdenticalAtOneWorker) {
  Fixture fixture = MakePlantedFixture(401);
  engine::RunReport expected =
      engine::Execute(BaseConfig(GetParam(), fixture.stream, "inprocess", 0));
  ASSERT_TRUE(expected.completed) << expected.error;

  for (const std::string backend : {"sharded", "forked"}) {
    const std::string context = GetParam() + " backend=" + backend;
    engine::RunReport report = engine::Execute(
        BaseConfig(GetParam(), fixture.stream, backend, 1));
    ASSERT_TRUE(report.completed) << context << ": " << report.error;
    ExpectSameSolution(report, expected, context);
    EXPECT_EQ(report.algorithm_name, expected.algorithm_name) << context;
    EXPECT_EQ(report.meter_breakdown, expected.meter_breakdown) << context;
    EXPECT_EQ(report.current_words, expected.current_words) << context;
    EXPECT_EQ(report.peak_words, expected.peak_words) << context;
    EXPECT_EQ(report.stages.batches, expected.stages.batches) << context;
  }
}

// (b) W = 3: the two multi-worker substrates must agree exactly —
// solution, per-shard accounting, and the deterministic merge's
// message-size bookkeeping. A forked worker process and a sharded
// worker thread are the same pipeline behind different isolation.
TEST_P(BackendSweep, ShardedAndForkedAgreeAtThreeWorkers) {
  Fixture fixture = MakePlantedFixture(411);
  engine::RunConfig sharded =
      BaseConfig(GetParam(), fixture.stream, "sharded", 3);
  sharded.validate = &fixture.instance;
  engine::RunConfig forked =
      BaseConfig(GetParam(), fixture.stream, "forked", 3);
  forked.validate = &fixture.instance;

  engine::RunReport a = engine::Execute(sharded);
  engine::RunReport b = engine::Execute(forked);
  ASSERT_TRUE(a.completed) << a.error;
  ASSERT_TRUE(b.completed) << GetParam() << ": " << b.error;
  ExpectSameSolution(b, a, GetParam());
  EXPECT_TRUE(b.validation.ok) << b.validation.error;
  EXPECT_EQ(b.peak_words, a.peak_words) << GetParam();
  EXPECT_EQ(b.sharded.shards, a.sharded.shards) << GetParam();
  EXPECT_EQ(b.sharded.shard_edges, a.sharded.shard_edges) << GetParam();
  EXPECT_EQ(b.sharded.shard_cover_sizes, a.sharded.shard_cover_sizes)
      << GetParam();
  EXPECT_EQ(b.sharded.max_message_words, a.sharded.max_message_words)
      << GetParam();
  EXPECT_EQ(b.sharded.threshold_sets, a.sharded.threshold_sets)
      << GetParam();
  EXPECT_EQ(b.sharded.patched_sets, a.sharded.patched_sets) << GetParam();
}

// (c) The checkpoint files themselves: a killed run leaves the same
// sidecar BYTES no matter which substrate was executing — plain SCKP
// at W = 1 (inprocess included), aggregate SCSH at W = 3.
TEST_P(BackendSweep, CheckpointSidecarsAreByteIdenticalAcrossBackends) {
  Fixture fixture = MakePlantedFixture(401);
  for (uint32_t workers : {1u, 3u}) {
    std::vector<std::string> backends = {"sharded", "forked"};
    if (workers == 1) backends.insert(backends.begin(), "inprocess");

    std::vector<std::string> paths;
    for (const std::string& backend : backends) {
      const std::string context = GetParam() + " backend=" + backend +
                                  " W=" + std::to_string(workers);
      const std::string path =
          TempPath("ckpt_" + GetParam() + "_" + backend +
                   std::to_string(workers));
      engine::RunConfig config =
          BaseConfig(GetParam(), fixture.stream, backend, workers);
      config.checkpoint.path = path;
      config.checkpoint.every = 10;
      config.stop_after = 25;
      engine::RunReport report = engine::Execute(config);
      ASSERT_TRUE(report.error.empty()) << context << ": " << report.error;
      ASSERT_FALSE(report.completed) << context;
      ASSERT_GE(report.checkpoints_written, uint64_t{workers}) << context;
      paths.push_back(path);
    }

    const std::string reference = FileBytes(paths[0]);
    ASSERT_FALSE(reference.empty()) << GetParam();
    for (size_t i = 1; i < paths.size(); ++i) {
      EXPECT_EQ(FileBytes(paths[i]), reference)
          << GetParam() << " W=" << workers << ": " << backends[i]
          << " sidecar differs from " << backends[0];
    }
    for (const std::string& path : paths) std::remove(path.c_str());
  }
}

// (d) Killing one worker PROCESS mid-stream: the run fails with the
// dead-worker diagnostic, the aggregate checkpoint holds every slot
// the workers managed to write, and resuming from it finishes
// bit-identical to the never-killed run.
TEST_P(BackendSweep, KillOneWorkerProcessAndResume) {
  Fixture fixture = MakePlantedFixture(401);
  const std::string path = TempPath("failw_" + GetParam() + ".scsh");

  engine::RunConfig base = BaseConfig(GetParam(), fixture.stream, "forked", 3);
  engine::RunReport expected = engine::Execute(base);
  ASSERT_TRUE(expected.completed) << expected.error;

  engine::RunConfig kill = base;
  kill.checkpoint.path = path;
  kill.checkpoint.every = 10;
  kill.backend.fail_worker = 1;
  kill.backend.fail_worker_after = 20;
  engine::RunReport killed = engine::Execute(kill);
  ASSERT_FALSE(killed.completed) << GetParam();
  EXPECT_NE(killed.error.find("worker 1 exited without a report"),
            std::string::npos)
      << GetParam() << ": " << killed.error;
  ASSERT_GT(killed.checkpoints_written, 0u) << GetParam();

  engine::RunConfig resume = base;
  resume.options.seed = 999;  // must be ignored: state is on disk
  resume.checkpoint.path = path;
  resume.checkpoint.every = 10;
  resume.checkpoint.resume = true;
  engine::RunReport resumed = engine::Execute(resume);
  ASSERT_TRUE(resumed.completed) << GetParam() << ": " << resumed.error;
  EXPECT_TRUE(resumed.resumed) << GetParam();
  ExpectSameSolution(resumed, expected, GetParam());
  std::remove(path.c_str());
}

// Stream schedules are substrate-independent source backends: a 2-pass
// schedule equals one pass over the physically doubled stream, on
// every backend.
TEST_P(BackendSweep, TwoPassScheduleMatchesDoubledStreamOnEveryBackend) {
  Fixture fixture = MakePlantedFixture(421);
  // Same declared metadata (the scheduled source reports one pass's
  // meta), twice the edges.
  EdgeStream doubled = fixture.stream;
  doubled.edges.insert(doubled.edges.end(), fixture.stream.edges.begin(),
                       fixture.stream.edges.end());
  engine::RunReport expected = engine::Execute(
      BaseConfig(GetParam(), doubled, "inprocess", 0));
  ASSERT_TRUE(expected.completed) << expected.error;

  for (const std::string backend : {"inprocess", "sharded", "forked"}) {
    const std::string context = GetParam() + " backend=" + backend;
    engine::RunConfig config =
        BaseConfig(GetParam(), fixture.stream, backend,
                   backend == "inprocess" ? 0 : 1);
    config.source.schedule.passes = 2;
    engine::RunReport report = engine::Execute(config);
    ASSERT_TRUE(report.completed) << context << ": " << report.error;
    EXPECT_EQ(report.solution.cover, expected.solution.cover) << context;
    EXPECT_EQ(report.solution.certificate, expected.solution.certificate)
        << context;
    EXPECT_EQ(report.edges_delivered, 2 * fixture.stream.size()) << context;
  }
}

std::string TestName(const testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name)
    if (c == '-') c = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(ShardableAlgorithms, BackendSweep,
                         testing::ValuesIn(ShardableAlgorithmNames()),
                         TestName);

// The forked backend over a real v3 stream file: each worker process
// opens its own cursor into the mmap'd file; the result must match
// the in-memory run edge for edge.
TEST(BackendMatrixTest, ForkedFileSourceMatchesInMemory) {
  Fixture fixture = MakePlantedFixture(431);
  const std::string path = TempPath("file.scs3");
  std::string error;
  ASSERT_TRUE(
      WriteStreamFile(fixture.stream, path, StreamFormat::kV3, &error))
      << error;

  engine::RunReport memory =
      engine::Execute(BaseConfig("kk", fixture.stream, "forked", 3));
  ASSERT_TRUE(memory.completed) << memory.error;

  engine::RunConfig from_file = BaseConfig("kk", fixture.stream, "forked", 3);
  from_file.source = engine::SourceSpec::File(path);
  engine::RunReport file = engine::Execute(from_file);
  ASSERT_TRUE(file.completed) << file.error;
  ExpectSameSolution(file, memory, "forked file vs memory");
  std::remove(path.c_str());
}

// A 2-pass schedule over a v3 FILE resumes mid-pass-2: scheduled
// positions (pass * N + record) are the checkpoint coordinate, so
// kill-and-resume composes with multi-pass runs.
TEST(BackendMatrixTest, TwoPassFileScheduleKillAndResume) {
  Fixture fixture = MakePlantedFixture(431);
  const std::string path = TempPath("twopass.scs3");
  const std::string ckpt = TempPath("twopass.sckp");
  std::string error;
  ASSERT_TRUE(
      WriteStreamFile(fixture.stream, path, StreamFormat::kV3, &error))
      << error;

  engine::RunConfig base = BaseConfig("kk", fixture.stream, "inprocess", 0);
  base.source = engine::SourceSpec::File(path);
  base.source.schedule.passes = 2;
  engine::RunReport expected = engine::Execute(base);
  ASSERT_TRUE(expected.completed) << expected.error;
  ASSERT_EQ(expected.edges_delivered, 2 * fixture.stream.size());

  engine::RunConfig kill = base;
  kill.checkpoint.path = ckpt;
  kill.checkpoint.every = 100;
  // Deep into pass 2.
  kill.stop_after = fixture.stream.size() + fixture.stream.size() / 2;
  engine::RunReport killed = engine::Execute(kill);
  ASSERT_TRUE(killed.error.empty()) << killed.error;
  ASSERT_FALSE(killed.completed);

  engine::RunConfig resume = base;
  resume.checkpoint.path = ckpt;
  resume.checkpoint.every = 100;
  resume.checkpoint.resume = true;
  engine::RunReport resumed = engine::Execute(resume);
  ASSERT_TRUE(resumed.completed) << resumed.error;
  EXPECT_GT(resumed.resumed_at, fixture.stream.size());
  ExpectSameSolution(resumed, expected, "2-pass resume");
  std::remove(path.c_str());
  std::remove(ckpt.c_str());
}

// Sliding-window schedules re-deliver recent records (duplicate-heavy
// arrival): the run completes, delivers more edges than the stream
// holds, still produces a valid certified cover of the instance, and
// is deterministic — the same schedule twice gives the same solution.
// (The cover may legitimately differ from the plain run: replays
// change which set claims an element.)
TEST(BackendMatrixTest, WindowScheduleDeliversReplaysAndStaysCorrect) {
  Fixture fixture = MakePlantedFixture(441);
  engine::RunConfig config = BaseConfig("kk", fixture.stream, "", 0);
  config.source.schedule.window = 16;
  config.source.schedule.replay_every = 64;
  config.validate = &fixture.instance;
  engine::RunReport report = engine::Execute(config);
  ASSERT_TRUE(report.completed) << report.error;
  EXPECT_GT(report.edges_delivered, fixture.stream.size());
  EXPECT_TRUE(report.validation.ok) << report.validation.error;

  engine::RunReport again = engine::Execute(config);
  ASSERT_TRUE(again.completed) << again.error;
  EXPECT_EQ(report.solution.cover, again.solution.cover);
  EXPECT_EQ(report.solution.certificate, again.solution.certificate);
  EXPECT_EQ(report.edges_delivered, again.edges_delivered);
}

// Windowed schedules are not checkpointable — replayed window contents
// are not position-addressable — and the engine must say so, not
// write a checkpoint that cannot resume.
TEST(BackendMatrixTest, WindowScheduleRejectsCheckpointing) {
  Fixture fixture = MakePlantedFixture(441);
  engine::RunConfig config = BaseConfig("kk", fixture.stream, "", 0);
  config.source.schedule.window = 16;
  config.source.schedule.replay_every = 64;
  config.checkpoint.path = TempPath("window.sckp");
  config.checkpoint.every = 10;
  engine::RunReport report = engine::Execute(config);
  ASSERT_FALSE(report.completed);
  EXPECT_NE(report.error.find("not checkpointable"), std::string::npos)
      << report.error;
}

// The forked backend refuses windowed schedules: replayed window
// contents cannot cross the process boundary by position.
TEST(BackendMatrixTest, ForkedRejectsWindowSchedules) {
  Fixture fixture = MakePlantedFixture(441);
  engine::RunConfig config = BaseConfig("kk", fixture.stream, "forked", 2);
  config.source.schedule.window = 16;
  config.source.schedule.replay_every = 64;
  engine::RunReport report = engine::Execute(config);
  ASSERT_FALSE(report.completed);
  EXPECT_NE(report.error.find("windowed schedules"), std::string::npos)
      << report.error;
}

// ShardedSession — the push-side of the seam: ingesting the stream in
// client-sized batches through W sub-sessions merges to the exact
// ExecuteSharded result at the same (seed, W).
TEST(BackendMatrixTest, ShardedSessionMatchesExecuteSharded) {
  Fixture fixture = MakePlantedFixture(451);
  engine::RunReport expected =
      engine::Execute(BaseConfig("kk", fixture.stream, "sharded", 3));
  ASSERT_TRUE(expected.completed) << expected.error;

  engine::ShardedSessionConfig config;
  config.base.algorithm = "kk";
  config.base.options.seed = 21;
  config.base.meta = fixture.stream.meta;
  config.workers = 3;
  std::string error;
  auto session = engine::ShardedSession::Open(config, false, &error);
  ASSERT_NE(session, nullptr) << error;

  uint64_t sequence = 0;
  for (size_t at = 0; at < fixture.stream.size(); at += 37) {
    const size_t take = std::min<size_t>(37, fixture.stream.size() - at);
    engine::IngestResult result = session->Ingest(
        ++sequence,
        std::span<const Edge>(fixture.stream.edges.data() + at, take),
        &error);
    ASSERT_EQ(result.status, engine::IngestStatus::kApplied) << error;
  }
  const engine::RunReport& report = session->Finalize();
  ASSERT_TRUE(report.completed) << report.error;
  EXPECT_EQ(report.solution.cover, expected.solution.cover);
  EXPECT_EQ(report.solution.certificate, expected.solution.certificate);
  EXPECT_EQ(report.edges_delivered, fixture.stream.size());
}

// Sharded sessions reject fault schedules outright — per-worker slice
// positions are not stream positions, so (seed, position) fault
// decisions would diverge from a whole-stream run.
TEST(BackendMatrixTest, ShardedSessionRejectsFaultSchedules) {
  engine::ShardedSessionConfig config;
  config.base.algorithm = "kk";
  config.base.meta = StreamMetadata{4, 4, 16};
  config.workers = 2;
  FaultSchedule faults;
  faults.duplicate_rate = 0.1;
  config.base.faults = faults;
  std::string error;
  EXPECT_EQ(engine::ShardedSession::Open(config, false, &error), nullptr);
  EXPECT_NE(error.find("fault schedules"), std::string::npos) << error;
}

// Dispatch and registry plumbing: explicit names win, workers > 1
// auto-selects sharded, unknown names fail with the known-name list,
// and the registry names all three substrates.
TEST(BackendMatrixTest, DispatchAndRegistry) {
  Fixture fixture = MakePlantedFixture(401);

  engine::RunConfig config = BaseConfig("kk", fixture.stream, "", 2);
  engine::RunReport sharded = engine::Execute(config);
  ASSERT_TRUE(sharded.completed) << sharded.error;
  EXPECT_EQ(sharded.sharded.shards, 2u);

  config.backend.name = "no-such-backend";
  engine::RunReport unknown = engine::Execute(config);
  ASSERT_FALSE(unknown.completed);
  EXPECT_NE(unknown.error.find("unknown backend"), std::string::npos);
  EXPECT_NE(unknown.error.find("forked"), std::string::npos);

  const auto& registry = engine::BackendRegistry();
  ASSERT_EQ(registry.size(), 3u);
  EXPECT_EQ(registry[0].name, "inprocess");
  EXPECT_EQ(registry[1].name, "sharded");
  EXPECT_EQ(registry[2].name, "forked");
  EXPECT_FALSE(registry[0].multiprocess);
  EXPECT_TRUE(registry[2].multiprocess);
}

}  // namespace
}  // namespace setcover
