// SessionServer end-to-end over the in-process transport (and a
// unix-socket smoke): concurrent sessions multiplexed over the engine,
// idempotent retries, admission-control shedding with client backoff,
// graceful drain, and hostile-byte handling. The final covers are
// always compared against engine::Execute oracles — the server must be
// an observationally invisible layer over the engine.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "engine/engine.h"
#include "instance/generators.h"
#include "server/client.h"
#include "server/server.h"
#include "stream/orderings.h"
#include "util/rng.h"

namespace setcover {
namespace server {
namespace {

struct Fixture {
  SetCoverInstance instance;
  EdgeStream stream;
};

Fixture MakeFixture(uint64_t seed) {
  Rng rng(seed);
  UniformRandomParams p;
  p.num_elements = 60;
  p.num_sets = 80;
  Fixture fixture{GenerateUniformRandom(p, rng), {}};
  fixture.stream = OrderedStream(fixture.instance, StreamOrder::kRandom, rng);
  return fixture;
}

engine::RunReport Oracle(const std::string& algorithm, uint64_t seed,
                         const Fixture& fixture) {
  engine::RunConfig config;
  config.algorithm = algorithm;
  config.options.seed = seed;
  config.source = engine::SourceSpec::InMemory(fixture.stream);
  engine::RunReport report = engine::Execute(config);
  EXPECT_TRUE(report.completed) << report.error;
  return report;
}

std::vector<uint32_t> ToU32(const std::vector<SetId>& ids) {
  return std::vector<uint32_t>(ids.begin(), ids.end());
}

ClientOptions FastClientOptions(uint64_t jitter_seed) {
  ClientOptions options;
  options.backoff.max_retries = 24;
  options.backoff.initial_delay_us = 1;
  options.backoff.max_delay_us = 50;
  options.backoff.jitter = 0.5;
  options.backoff.jitter_seed = jitter_seed;
  options.sleeper = [](uint64_t) {};  // deterministic tests never sleep
  return options;
}

SessionClient::Dialer DialerFor(LocalEndpoint* endpoint) {
  return [endpoint](std::string* error) {
    return endpoint->Connect(error);
  };
}

OpenBody MakeOpen(const std::string& algorithm, uint64_t seed,
                  const Fixture& fixture) {
  OpenBody open;
  open.algorithm = algorithm;
  open.seed = seed;
  open.meta = fixture.stream.meta;
  return open;
}

TEST(SessionServer, SingleSessionMatchesEngineOracle) {
  Fixture fixture = MakeFixture(201);
  const std::string algorithm = RegisteredAlgorithmNames().front();
  engine::RunReport expected = Oracle(algorithm, 21, fixture);

  LocalEndpoint endpoint;
  SessionServer server({}, endpoint.Listen());
  server.Start();

  SessionClient client(DialerFor(&endpoint), FastClientOptions(1));
  Message reply;
  std::string error;
  ASSERT_TRUE(RunSessionToCompletion(&client, 7,
                                     MakeOpen(algorithm, 21, fixture),
                                     fixture.stream.edges, 64, &reply,
                                     &error))
      << error;
  EXPECT_EQ(reply.cover, ToU32(expected.solution.cover));
  EXPECT_EQ(reply.certificate, ToU32(expected.solution.certificate));
  EXPECT_EQ(reply.edges_delivered, expected.edges_delivered);
  EXPECT_EQ(reply.uncovered_elements, expected.uncovered_elements);
  EXPECT_EQ(reply.current_words, expected.current_words);
  server.DrainAndStop();
}

TEST(SessionServer, ConcurrentSessionsAllMatchTheirOracles) {
  Fixture fixture = MakeFixture(202);
  const std::vector<std::string> algorithms = RegisteredAlgorithmNames();
  constexpr int kSessions = 24;

  LocalEndpoint endpoint;
  ServerOptions options;
  options.worker_threads = 3;
  options.max_queue = 256;
  SessionServer server(options, endpoint.Listen());
  server.Start();

  std::vector<Message> replies(kSessions);
  std::vector<std::string> errors(kSessions);
  std::vector<char> ok(kSessions, 0);
  {
    std::vector<std::thread> clients;
    for (int i = 0; i < kSessions; ++i) {
      clients.emplace_back([&, i] {
        const std::string& algorithm = algorithms[i % algorithms.size()];
        SessionClient client(DialerFor(&endpoint),
                             FastClientOptions(uint64_t(i) + 1));
        ok[i] = RunSessionToCompletion(
            &client, uint64_t(i) + 1,
            MakeOpen(algorithm, 100 + uint64_t(i), fixture),
            fixture.stream.edges, 16 + i, &replies[i], &errors[i]);
      });
    }
    for (auto& thread : clients) thread.join();
  }

  for (int i = 0; i < kSessions; ++i) {
    ASSERT_TRUE(ok[i]) << "session " << i << ": " << errors[i];
    engine::RunReport expected = Oracle(algorithms[i % algorithms.size()],
                                        100 + uint64_t(i), fixture);
    EXPECT_EQ(replies[i].cover, ToU32(expected.solution.cover))
        << "session " << i;
    EXPECT_EQ(replies[i].certificate, ToU32(expected.solution.certificate))
        << "session " << i;
  }
  EXPECT_EQ(server.Stats().open_sessions, uint64_t(kSessions));
  server.DrainAndStop();
}

TEST(SessionServer, RetriedIngestIsAppliedExactlyOnce) {
  Fixture fixture = MakeFixture(203);
  const std::string algorithm = RegisteredAlgorithmNames().front();

  LocalEndpoint endpoint;
  SessionServer server({}, endpoint.Listen());
  server.Start();

  SessionClient client(DialerFor(&endpoint), FastClientOptions(5));
  Message reply;
  std::string error;
  ASSERT_TRUE(client.Open(1, MakeOpen(algorithm, 21, fixture), &reply,
                          &error))
      << error;
  std::span<const Edge> edges(fixture.stream.edges);
  ASSERT_TRUE(client.Ingest(1, 1, edges.subspan(0, 32), &reply, &error))
      << error;
  EXPECT_FALSE(reply.duplicate);

  // A paranoid client re-sends the same sequence three times (as it
  // would after lost replies): acknowledged, never re-applied.
  for (int retry = 0; retry < 3; ++retry) {
    ASSERT_TRUE(client.Ingest(1, 1, edges.subspan(0, 32), &reply, &error))
        << error;
    EXPECT_TRUE(reply.duplicate);
    EXPECT_EQ(reply.last_sequence, 1u);
  }
  ASSERT_TRUE(client.Stats(1, &reply, &error)) << error;
  EXPECT_EQ(reply.session_stats.edges_delivered, 32u);
  EXPECT_EQ(reply.session_stats.duplicate_ingests, 3u);

  // A sequence gap is rejected and does not advance anything.
  EXPECT_FALSE(client.Ingest(1, 5, edges.subspan(32, 8), &reply, &error));
  EXPECT_NE(error.find("sequence gap"), std::string::npos) << error;
  server.DrainAndStop();
}

// The finalize fence: a client that believes more batches were applied
// than the session holds (the post-crash rollback shape) must be
// rejected, not handed a cover over a truncated stream. At the true
// cursor — or unfenced — finalize succeeds, and a fenced re-send of a
// finalized session still matches its (unchanged) cursor.
TEST(SessionServer, FinalizeFenceRejectsARolledBackCursor) {
  Fixture fixture = MakeFixture(207);
  const std::string algorithm = RegisteredAlgorithmNames().front();

  LocalEndpoint endpoint;
  SessionServer server({}, endpoint.Listen());
  server.Start();

  SessionClient client(DialerFor(&endpoint), FastClientOptions(9));
  Message reply;
  std::string error;
  ASSERT_TRUE(client.Open(1, MakeOpen(algorithm, 21, fixture), &reply,
                          &error))
      << error;
  std::span<const Edge> edges(fixture.stream.edges);
  ASSERT_TRUE(client.Ingest(1, 1, edges.subspan(0, 32), &reply, &error));
  ASSERT_TRUE(client.Ingest(1, 2, edges.subspan(32, 32), &reply, &error));

  EXPECT_FALSE(client.Finalize(1, 7, &reply, &error));
  EXPECT_NE(error.find("fence mismatch"), std::string::npos) << error;

  ASSERT_TRUE(client.Finalize(1, 2, &reply, &error)) << error;
  EXPECT_EQ(reply.edges_delivered, 64u);
  // Idempotent re-send, still fenced at the sealed cursor.
  ASSERT_TRUE(client.Finalize(1, 2, &reply, &error)) << error;
  EXPECT_EQ(reply.edges_delivered, 64u);
  server.DrainAndStop();
}

TEST(SessionServer, OverloadShedsWithRetryAfterAndClientsStillFinish) {
  Fixture fixture = MakeFixture(204);
  const std::string algorithm = RegisteredAlgorithmNames().front();

  LocalEndpoint endpoint;
  ServerOptions options;
  options.worker_threads = 1;  // tiny server:
  options.max_queue = 1;       // almost everything beyond one op sheds
  options.retry_after_us = 10;
  SessionServer server(options, endpoint.Listen());
  server.Start();

  constexpr int kClients = 8;
  std::vector<char> ok(kClients, 0);
  std::vector<std::string> errors(kClients);
  std::vector<Message> replies(kClients);
  std::vector<uint64_t> sheds_seen(kClients, 0);
  {
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        ClientOptions client_options = FastClientOptions(uint64_t(i) + 1);
        client_options.backoff.max_retries = 64;  // shed storms need depth
        SessionClient client(DialerFor(&endpoint), client_options);
        ok[i] = RunSessionToCompletion(
            &client, uint64_t(i) + 1, MakeOpen(algorithm, 21, fixture),
            fixture.stream.edges, 8, &replies[i], &errors[i]);
        sheds_seen[i] = client.RetriesAfterShed();
      });
    }
    for (auto& thread : clients) thread.join();
  }

  engine::RunReport expected = Oracle(algorithm, 21, fixture);
  uint64_t total_sheds_seen = 0;
  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(ok[i]) << "client " << i << ": " << errors[i];
    EXPECT_EQ(replies[i].cover, ToU32(expected.solution.cover))
        << "client " << i;
    total_sheds_seen += sheds_seen[i];
  }
  // The server must actually have shed under this load, and the client
  // counters must agree that the sheds were seen and retried through.
  EXPECT_GT(server.Stats().sheds, 0u);
  EXPECT_EQ(total_sheds_seen, server.Stats().sheds);
  server.DrainAndStop();
}

TEST(SessionServer, GracefulDrainAnswersInFlightAndShedsNewWork) {
  Fixture fixture = MakeFixture(205);
  const std::string algorithm = RegisteredAlgorithmNames().front();

  LocalEndpoint endpoint;
  SessionServer server({}, endpoint.Listen());
  server.Start();

  SessionClient client(DialerFor(&endpoint), FastClientOptions(9));
  Message reply;
  std::string error;
  ASSERT_TRUE(client.Open(1, MakeOpen(algorithm, 21, fixture), &reply,
                          &error))
      << error;
  std::span<const Edge> edges(fixture.stream.edges);
  ASSERT_TRUE(client.Ingest(1, 1, edges.subspan(0, 16), &reply, &error));

  server.DrainAndStop();

  // Post-drain requests on a surviving connection are refused with
  // kRetryAfter(kDraining) until the connection dies; a client with a
  // finite budget gives up cleanly.
  ClientOptions impatient = FastClientOptions(10);
  impatient.backoff.max_retries = 2;
  SessionClient late(DialerFor(&endpoint), impatient);
  EXPECT_FALSE(late.Ingest(1, 2, edges.subspan(16, 8), &reply, &error));
}

TEST(SessionServer, MalformedFramesGetErrorsAndConnectionSurvives) {
  Fixture fixture = MakeFixture(206);
  const std::string algorithm = RegisteredAlgorithmNames().front();

  LocalEndpoint endpoint;
  SessionServer server({}, endpoint.Listen());
  server.Start();

  std::string error;
  auto connection = endpoint.Connect(&error);
  ASSERT_NE(connection, nullptr) << error;

  // Garbage bytes: the server answers kError instead of dying.
  std::vector<uint8_t> garbage = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x01,
                                  0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                                  0x08, 0x09, 0x0a, 0x0b};
  ASSERT_TRUE(connection->Send(garbage));
  std::vector<uint8_t> raw_reply;
  ASSERT_TRUE(connection->Receive(&raw_reply));
  std::optional<Message> decoded = DecodeMessage(raw_reply, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->type, MessageType::kError);

  // The same connection still serves a well-formed open.
  Message open;
  open.type = MessageType::kOpen;
  open.session_id = 3;
  open.open = MakeOpen(algorithm, 21, fixture);
  ASSERT_TRUE(connection->Send(EncodeMessage(open)));
  ASSERT_TRUE(connection->Receive(&raw_reply));
  decoded = DecodeMessage(raw_reply, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->type, MessageType::kOpenOk);
  server.DrainAndStop();
}

TEST(SessionServer, UnknownSessionAndUnknownAlgorithmAreCleanErrors) {
  Fixture fixture = MakeFixture(207);
  LocalEndpoint endpoint;
  SessionServer server({}, endpoint.Listen());
  server.Start();

  SessionClient client(DialerFor(&endpoint), FastClientOptions(11));
  Message reply;
  std::string error;
  std::span<const Edge> edges(fixture.stream.edges);
  EXPECT_FALSE(client.Ingest(404, 1, edges.subspan(0, 4), &reply, &error));
  EXPECT_NE(error.find("unknown session"), std::string::npos) << error;

  EXPECT_FALSE(client.Open(5, MakeOpen("no-such-algorithm", 1, fixture),
                           &reply, &error));
  EXPECT_FALSE(error.empty());

  // Close is idempotent even for ids that never existed.
  EXPECT_TRUE(client.Close(404, &reply, &error)) << error;
  server.DrainAndStop();
}

TEST(SessionServer, UnixSocketSmoke) {
  Fixture fixture = MakeFixture(208);
  const std::string algorithm = RegisteredAlgorithmNames().front();
  engine::RunReport expected = Oracle(algorithm, 21, fixture);
  const std::string socket_path = testing::TempDir() + "setcover_srv.sock";

  std::string error;
  auto listener = ListenUnix(socket_path, &error);
  ASSERT_NE(listener, nullptr) << error;
  SessionServer server({}, std::move(listener));
  server.Start();

  SessionClient client(
      [&socket_path](std::string* dial_error) {
        return ConnectUnix(socket_path, dial_error);
      },
      FastClientOptions(12));
  Message reply;
  ASSERT_TRUE(RunSessionToCompletion(&client, 1,
                                     MakeOpen(algorithm, 21, fixture),
                                     fixture.stream.edges, 64, &reply,
                                     &error))
      << error;
  EXPECT_EQ(reply.cover, ToU32(expected.solution.cover));
  EXPECT_EQ(reply.certificate, ToU32(expected.solution.certificate));
  server.DrainAndStop();
}


// --- Idle-session TTL eviction (SessionManager::EvictIdle) -----------

/// A SessionManager on a fake clock: tests advance time explicitly, so
/// TTL math is deterministic and instant.
struct EvictionHarness {
  std::string dir;
  std::shared_ptr<std::atomic<int64_t>> now_ns;
  std::unique_ptr<SessionManager> manager;

  explicit EvictionHarness(const std::string& tag, bool persistent = true) {
    dir = testing::TempDir() + "evict_" + tag;
    std::filesystem::remove_all(dir);
    if (persistent) std::filesystem::create_directories(dir);
    now_ns = std::make_shared<std::atomic<int64_t>>(0);
    auto now = now_ns;
    manager = std::make_unique<SessionManager>(
        persistent ? dir : std::string(), [now] {
          return SessionManager::Clock::time_point(
              std::chrono::duration_cast<SessionManager::Clock::duration>(
                  std::chrono::nanoseconds(now->load())));
        });
  }

  void AdvanceSeconds(int64_t seconds) {
    now_ns->fetch_add(seconds * 1'000'000'000);
  }
};

Message OpenMessage(uint64_t id, const OpenBody& open) {
  Message message;
  message.type = MessageType::kOpen;
  message.session_id = id;
  message.open = open;
  return message;
}

Message IngestMessage(uint64_t id, uint64_t sequence,
                      std::vector<Edge> edges) {
  Message message;
  message.type = MessageType::kIngest;
  message.session_id = id;
  message.sequence = sequence;
  message.edges = std::move(edges);
  return message;
}

// An idle persistent session is checkpointed and evicted; the first
// re-touch gets kRetryAfter(kEvicted); the retry recovers the session
// from its sidecars and the run finishes bit-identical to the oracle.
TEST(SessionEviction, IdleSessionEvictsThenRecoversBitIdentical) {
  Fixture fixture = MakeFixture(231);
  const std::string algorithm = RegisteredAlgorithmNames().front();
  engine::RunReport expected = Oracle(algorithm, 21, fixture);
  EvictionHarness harness("recover");

  OpenBody open = MakeOpen(algorithm, 21, fixture);
  ASSERT_EQ(harness.manager->Handle(OpenMessage(9, open)).type,
            MessageType::kOpenOk);

  // Half the stream, then go idle past the TTL.
  const size_t half = fixture.stream.edges.size() / 2;
  uint64_t sequence = 0;
  ASSERT_EQ(harness.manager
                ->Handle(IngestMessage(
                    9, ++sequence,
                    {fixture.stream.edges.begin(),
                     fixture.stream.edges.begin() + half}))
                .type,
            MessageType::kIngestOk);
  harness.AdvanceSeconds(120);
  EXPECT_EQ(harness.manager->EvictIdle(std::chrono::seconds(60)), 1u);
  EXPECT_EQ(harness.manager->OpenSessions(), 0u);

  // First re-touch: one-shot retry hint.
  Message tail = IngestMessage(
      9, sequence + 1,
      {fixture.stream.edges.begin() + half, fixture.stream.edges.end()});
  Message shed = harness.manager->Handle(tail);
  ASSERT_EQ(shed.type, MessageType::kRetryAfter);
  EXPECT_EQ(shed.retry_reason, RetryReason::kEvicted);

  // The retry recovers from the eviction checkpoint and continues.
  Message applied = harness.manager->Handle(tail);
  ASSERT_EQ(applied.type, MessageType::kIngestOk) << applied.error;
  EXPECT_FALSE(applied.duplicate);

  Message finalize;
  finalize.type = MessageType::kFinalize;
  finalize.session_id = 9;
  Message reply = harness.manager->Handle(finalize);
  ASSERT_EQ(reply.type, MessageType::kFinalizeOk) << reply.error;
  EXPECT_EQ(reply.cover, ToU32(expected.solution.cover));
  EXPECT_EQ(reply.certificate, ToU32(expected.solution.certificate));
}

// The sweep only takes sessions past the TTL: an actively touched
// session stays resident while its idle sibling is evicted.
TEST(SessionEviction, ActiveSessionsSurviveTheSweep) {
  Fixture fixture = MakeFixture(233);
  const std::string algorithm = RegisteredAlgorithmNames().front();
  EvictionHarness harness("active");

  OpenBody open = MakeOpen(algorithm, 21, fixture);
  ASSERT_EQ(harness.manager->Handle(OpenMessage(1, open)).type,
            MessageType::kOpenOk);
  ASSERT_EQ(harness.manager->Handle(OpenMessage(2, open)).type,
            MessageType::kOpenOk);

  harness.AdvanceSeconds(45);
  // Touch session 1 only (stats counts as a touch).
  Message stats;
  stats.type = MessageType::kStats;
  stats.session_id = 1;
  ASSERT_EQ(harness.manager->Handle(stats).type, MessageType::kStatsOk);

  harness.AdvanceSeconds(30);  // session 2 idle 75s, session 1 idle 30s
  EXPECT_EQ(harness.manager->EvictIdle(std::chrono::seconds(60)), 1u);
  EXPECT_EQ(harness.manager->OpenSessions(), 1u);
  EXPECT_EQ(harness.manager->Handle(stats).type, MessageType::kStatsOk);
}

// Volatile sessions (no state_dir) are never evicted — dropping them
// would lose state the client was promised.
TEST(SessionEviction, VolatileSessionsAreNeverEvicted) {
  Fixture fixture = MakeFixture(235);
  const std::string algorithm = RegisteredAlgorithmNames().front();
  EvictionHarness harness("volatile", /*persistent=*/false);

  ASSERT_EQ(harness.manager
                ->Handle(OpenMessage(3, MakeOpen(algorithm, 21, fixture)))
                .type,
            MessageType::kOpenOk);
  harness.AdvanceSeconds(3600);
  EXPECT_EQ(harness.manager->EvictIdle(std::chrono::seconds(1)), 0u);
  EXPECT_EQ(harness.manager->OpenSessions(), 1u);
}

// --- Sharded sessions over the wire (OpenBody::workers) --------------

// One daemon, both substrates: a session opened with workers = 3 runs
// the W-way sharded pipeline behind the same protocol, and the final
// cover equals the sharded-backend oracle at the same (seed, W).
TEST(SessionServer, ShardedSessionMatchesShardedBackendOracle) {
  Fixture fixture = MakeFixture(237);
  engine::RunConfig oracle_config;
  oracle_config.algorithm = "kk";
  oracle_config.options.seed = 21;
  oracle_config.source = engine::SourceSpec::InMemory(fixture.stream);
  oracle_config.backend.name = "sharded";
  oracle_config.backend.workers = 3;
  engine::RunReport expected = engine::Execute(oracle_config);
  ASSERT_TRUE(expected.completed) << expected.error;

  LocalEndpoint endpoint;
  SessionServer server({}, endpoint.Listen());
  server.Start();

  SessionClient client(DialerFor(&endpoint), FastClientOptions(31));
  OpenBody open = MakeOpen("kk", 21, fixture);
  open.workers = 3;
  Message reply;
  std::string error;
  ASSERT_TRUE(RunSessionToCompletion(&client, 5, open,
                                     fixture.stream.edges, 64, &reply,
                                     &error))
      << error;
  EXPECT_EQ(reply.cover, ToU32(expected.solution.cover));
  EXPECT_EQ(reply.certificate, ToU32(expected.solution.certificate));
  server.DrainAndStop();
}

}  // namespace
}  // namespace server
}  // namespace setcover
