// The shared-memory SPSC byte ring under the same-host transport:
// frames round-trip bit-exactly across wrap-around, backpressure
// blocks and releases correctly, Close wakes both sides, a corrupt
// length kills the ring (framing cannot resync), and Map refuses
// regions that are not rings. scripts/check.sh runs this under ASan
// and TSan — the producer/consumer cursor publication must be clean.

#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/shm_ring.h"

namespace setcover {
namespace {

std::vector<uint8_t> Pattern(size_t size, uint8_t salt) {
  std::vector<uint8_t> bytes(size);
  for (size_t i = 0; i < size; ++i)
    bytes[i] = uint8_t(salt + i * 37 + (i >> 8));
  return bytes;
}

TEST(ShmRing, FramesRoundTripInOrder) {
  std::string error;
  auto ring = ShmRing::Create(1 << 14, &error);
  ASSERT_NE(ring, nullptr) << error;
  EXPECT_GE(ring->Capacity(), size_t(1) << 14);

  for (uint8_t salt = 0; salt < 16; ++salt) {
    const std::vector<uint8_t> sent = Pattern(salt * 97 % 1000, salt);
    ASSERT_TRUE(ring->PushFrame(sent));
    std::vector<uint8_t> received;
    ASSERT_TRUE(ring->PopFrame(&received));
    EXPECT_EQ(received, sent) << "salt=" << int(salt);
  }
}

TEST(ShmRing, EmptyFramesAreFramesToo) {
  std::string error;
  auto ring = ShmRing::Create(ShmRing::kMinCapacity, &error);
  ASSERT_NE(ring, nullptr) << error;
  ASSERT_TRUE(ring->PushFrame(nullptr, 0));
  std::vector<uint8_t> received{1, 2, 3};
  ASSERT_TRUE(ring->PopFrame(&received));
  EXPECT_TRUE(received.empty());
}

// Frames sized to never divide the capacity force every wrap-around
// alignment over time; the consumer must see every byte intact.
TEST(ShmRing, WrapAroundUnderConcurrencyIsTearFree) {
  std::string error;
  auto ring = ShmRing::Create(1 << 12, &error);
  ASSERT_NE(ring, nullptr) << error;

  constexpr int kFrames = 4000;
  std::thread producer([&] {
    for (int i = 0; i < kFrames; ++i) {
      const std::vector<uint8_t> frame =
          Pattern(1 + (i * 131) % 700, uint8_t(i));
      ASSERT_TRUE(ring->PushFrame(frame)) << i;
    }
  });
  std::vector<uint8_t> received;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(ring->PopFrame(&received)) << i;
    const std::vector<uint8_t> expected =
        Pattern(1 + (i * 131) % 700, uint8_t(i));
    ASSERT_EQ(received, expected) << i;
  }
  producer.join();
}

// A full ring blocks the producer until the consumer frees space —
// and only then.
TEST(ShmRing, BackpressureBlocksUntilConsumed) {
  std::string error;
  auto ring = ShmRing::Create(ShmRing::kMinCapacity, &error);
  ASSERT_NE(ring, nullptr) << error;

  const std::vector<uint8_t> big(ring->Capacity() / 2, 0x5c);
  ASSERT_TRUE(ring->PushFrame(big));
  // A second half-capacity frame cannot fit until the first is popped
  // (4 prefix bytes each). The push must block, then succeed.
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(ring->PushFrame(big));
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  std::vector<uint8_t> received;
  ASSERT_TRUE(ring->PopFrame(&received));
  EXPECT_EQ(received, big);
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_TRUE(ring->PopFrame(&received));
  EXPECT_EQ(received, big);
}

TEST(ShmRing, FrameLargerThanCapacityIsRefusedNotWedged) {
  std::string error;
  auto ring = ShmRing::Create(ShmRing::kMinCapacity, &error);
  ASSERT_NE(ring, nullptr) << error;
  const std::vector<uint8_t> huge(ring->Capacity() + 1, 0);
  EXPECT_FALSE(ring->PushFrame(huge));
  // The ring stays usable for frames that do fit.
  ASSERT_TRUE(ring->PushFrame(Pattern(100, 3)));
  std::vector<uint8_t> received;
  ASSERT_TRUE(ring->PopFrame(&received));
  EXPECT_EQ(received, Pattern(100, 3));
}

TEST(ShmRing, CloseWakesABlockedConsumerAfterDraining) {
  std::string error;
  auto ring = ShmRing::Create(ShmRing::kMinCapacity, &error);
  ASSERT_NE(ring, nullptr) << error;
  ASSERT_TRUE(ring->PushFrame(Pattern(64, 9)));

  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ring->Close();
  });
  std::vector<uint8_t> received;
  // The frame published before the close still drains...
  ASSERT_TRUE(ring->PopFrame(&received));
  EXPECT_EQ(received, Pattern(64, 9));
  // ...then the closed, empty ring fails fast instead of blocking.
  EXPECT_FALSE(ring->PopFrame(&received));
  closer.join();
  EXPECT_FALSE(ring->PushFrame(Pattern(8, 1)));
}

TEST(ShmRing, IdleWatcherAbortsABlockedWait) {
  std::string error;
  auto ring = ShmRing::Create(ShmRing::kMinCapacity, &error);
  ASSERT_NE(ring, nullptr) << error;
  ring->SetIdleWatcher([] { return false; });  // "peer is dead"
  std::vector<uint8_t> received;
  EXPECT_FALSE(ring->PopFrame(&received));
  EXPECT_TRUE(ring->Closed());
}

// Both sides of a real transport map the same fd. dup() stands in for
// the SCM_RIGHTS copy the unix socket would deliver.
TEST(ShmRing, CrossMappingSeesTheSameBytes) {
  std::string error;
  auto producer_side = ShmRing::Create(1 << 13, &error);
  ASSERT_NE(producer_side, nullptr) << error;
  auto consumer_side = ShmRing::Map(::dup(producer_side->Fd()), &error);
  ASSERT_NE(consumer_side, nullptr) << error;
  EXPECT_EQ(consumer_side->Capacity(), producer_side->Capacity());

  for (int i = 0; i < 64; ++i) {
    const std::vector<uint8_t> frame = Pattern(10 + i * 71 % 3000, uint8_t(i));
    ASSERT_TRUE(producer_side->PushFrame(frame));
    std::vector<uint8_t> received;
    ASSERT_TRUE(consumer_side->PopFrame(&received));
    ASSERT_EQ(received, frame) << i;
  }
  // Close propagates through the shared header, either direction.
  consumer_side->Close();
  EXPECT_TRUE(producer_side->Closed());
}

// A torn length is unrecoverable: the ring must die, not spin or
// deliver garbage. The corruption is injected by a producer that lies
// about its cursor — we push a valid frame, then scribble its length.
TEST(ShmRing, CorruptLengthClosesTheRing) {
  std::string error;
  auto writer = ShmRing::Create(ShmRing::kMinCapacity, &error);
  ASSERT_NE(writer, nullptr) << error;
  auto reader = ShmRing::Map(::dup(writer->Fd()), &error);
  ASSERT_NE(reader, nullptr) << error;

  ASSERT_TRUE(writer->PushFrame(Pattern(32, 5)));
  // Scribble the frame's length prefix through the backing fd. The
  // data array is the trailing Capacity() bytes of the region, so its
  // offset falls out of fstat without knowing the header layout.
  struct stat st;
  ASSERT_EQ(::fstat(writer->Fd(), &st), 0);
  const off_t data_offset = st.st_size - off_t(writer->Capacity());
  uint8_t poison[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::pwrite(writer->Fd(), poison, 4, data_offset), 4);
  std::vector<uint8_t> received;
  EXPECT_FALSE(reader->PopFrame(&received));
  EXPECT_TRUE(reader->Closed());
}

TEST(ShmRing, MapRejectsRegionsThatAreNotRings) {
  // Too small outright.
  {
    const int fd = ::memfd_create("not-a-ring", 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::ftruncate(fd, 64), 0);
    std::string error;
    EXPECT_EQ(ShmRing::Map(fd, &error), nullptr);  // Map closes fd
    EXPECT_FALSE(error.empty());
  }
  // Right size, wrong magic (all-zero header).
  {
    std::string error;
    auto real = ShmRing::Create(ShmRing::kMinCapacity, &error);
    ASSERT_NE(real, nullptr) << error;
    struct stat st;
    ASSERT_EQ(::fstat(real->Fd(), &st), 0);
    const int fd = ::memfd_create("not-a-ring", 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::ftruncate(fd, st.st_size), 0);
    EXPECT_EQ(ShmRing::Map(fd, &error), nullptr);
    EXPECT_FALSE(error.empty());
  }
}

}  // namespace
}  // namespace setcover
