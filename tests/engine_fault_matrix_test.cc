// Fault-injector × checkpoint matrix (the crash matrix of
// docs/robustness.md): for every registered algorithm and every fault
// kind in isolation — transient, duplicate, drop, corrupt — a run
// killed mid-stream and resumed from its checkpoint through
// engine::Execute must finish bit-identical to the same faulty run
// left unkilled: cover, certificate, meter, and fault counters.

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.h"
#include "engine/engine.h"
#include "instance/generators.h"
#include "stream/orderings.h"
#include "util/rng.h"

namespace setcover {
namespace {

struct FaultCase {
  const char* name;
  FaultSchedule schedule;
};

std::vector<FaultCase> FaultKinds() {
  std::vector<FaultCase> cases;
  {
    FaultSchedule s;
    s.seed = 91;
    s.transient_rate = 0.05;
    cases.push_back({"transient", s});
  }
  {
    FaultSchedule s;
    s.seed = 92;
    s.duplicate_rate = 0.05;
    cases.push_back({"duplicate", s});
  }
  {
    FaultSchedule s;
    s.seed = 93;
    s.drop_rate = 0.05;
    cases.push_back({"drop", s});
  }
  {
    FaultSchedule s;
    s.seed = 94;
    s.corrupt_rate = 0.05;
    cases.push_back({"corrupt", s});
  }
  return cases;
}

class FaultMatrix : public testing::TestWithParam<std::string> {};

TEST_P(FaultMatrix, ResumeAfterKillIsBitIdenticalUnderEachFaultKind) {
  Rng rng(401);
  UniformRandomParams p;
  p.num_elements = 60;
  p.num_sets = 80;
  SetCoverInstance instance = GenerateUniformRandom(p, rng);
  EdgeStream stream = OrderedStream(instance, StreamOrder::kRandom, rng);

  // PID-qualified: the forced-SIMD-tier ctest matrix runs several
  // instances of this binary concurrently on the same TempDir.
  std::string path = testing::TempDir() + "fault_matrix_" +
                     std::to_string(getpid()) + "_" + GetParam();
  for (char& c : path)
    if (c == '-') c = '_';
  path += ".sckp";

  for (const FaultCase& fault : FaultKinds()) {
    const std::string context = GetParam() + " fault=" + fault.name;

    engine::RunConfig base;
    base.algorithm = GetParam();
    base.options.seed = 21;
    base.source = engine::SourceSpec::InMemory(stream);
    base.faults = fault.schedule;

    engine::RunReport expected = engine::Execute(base);
    ASSERT_TRUE(expected.completed) << context << ": " << expected.error;
    ASSERT_FALSE(expected.degraded) << context;

    for (uint64_t k : {uint64_t{17}, uint64_t{90}}) {
      const std::string kill_context = context + " k=" + std::to_string(k);

      engine::RunConfig kill = base;
      kill.checkpoint.path = path;
      kill.checkpoint.every = k;
      kill.stop_after = k;
      engine::RunReport killed = engine::Execute(kill);
      ASSERT_FALSE(killed.completed) << kill_context;
      ASSERT_TRUE(killed.error.empty()) << kill_context << ": "
                                        << killed.error;
      ASSERT_GE(killed.checkpoints_written, 1u) << kill_context;

      engine::RunConfig resume = base;
      resume.options.seed = 777;  // must be ignored: state is on disk
      resume.checkpoint.path = path;
      resume.checkpoint.resume = true;
      engine::RunReport resumed = engine::Execute(resume);
      ASSERT_TRUE(resumed.completed)
          << kill_context << ": " << resumed.error;
      EXPECT_TRUE(resumed.resumed) << kill_context;

      EXPECT_EQ(resumed.solution.cover, expected.solution.cover)
          << kill_context;
      EXPECT_EQ(resumed.solution.certificate, expected.solution.certificate)
          << kill_context;
      EXPECT_EQ(resumed.edges_delivered, expected.edges_delivered)
          << kill_context;
      EXPECT_EQ(resumed.corrupt_records_skipped,
                expected.corrupt_records_skipped)
          << kill_context;
      EXPECT_EQ(resumed.current_words, expected.current_words)
          << kill_context;
      EXPECT_FALSE(resumed.degraded) << kill_context;
    }
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, FaultMatrix,
                         testing::ValuesIn(RegisteredAlgorithmNames()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

}  // namespace
}  // namespace setcover
