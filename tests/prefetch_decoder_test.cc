// The pipelined decoder (stream/prefetch_decoder.h) must be
// observationally identical to the synchronous reader it wraps — same
// edges, same batches, same damage flags, same seek semantics — with
// the only difference being which thread does the decoding. These tests
// are also the TSan workout for the slot handoff.

#include "stream/prefetch_decoder.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "core/kk_algorithm.h"
#include "instance/generators.h"
#include "stream/orderings.h"
#include "util/rng.h"

namespace setcover {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

/// Long enough to span several pipeline units (kUnitChunks chunks per
/// slot), so the worker and consumer genuinely alternate slots.
const EdgeStream& PipelineStream() {
  static const EdgeStream stream = [] {
    Rng rng(31);
    UniformRandomParams params;
    params.num_elements = 400;
    params.num_sets = 50000;
    params.min_set_size = 2;
    params.max_set_size = 4;
    auto instance = GenerateUniformRandom(params, rng);
    return RandomOrderStream(instance, rng);
  }();
  return stream;
}

std::string WriteFormat(const EdgeStream& stream, const std::string& name,
                        StreamFormat format) {
  std::string path = TempPath(name);
  std::string error;
  EXPECT_TRUE(WriteStreamFile(stream, path, format, &error)) << error;
  return path;
}

class PrefetchFormats : public testing::TestWithParam<StreamFormat> {};

TEST_P(PrefetchFormats, EdgeSequenceMatchesSyncReader) {
  const EdgeStream& stream = PipelineStream();
  ASSERT_GT(stream.size(), PrefetchDecoder::kUnitChunks * 4096 * 2);
  std::string path = WriteFormat(stream, "pf_seq_v" + std::to_string(uint32_t(GetParam())) + ".bin", GetParam());

  std::string error;
  auto sync_reader = StreamFileReader::Open(path, &error);
  ASSERT_NE(sync_reader, nullptr) << error;
  auto prefetch = PrefetchDecoder::Create(
      StreamFileReader::Open(path, &error));
  ASSERT_NE(prefetch, nullptr) << error;

  Edge expected, actual;
  size_t i = 0;
  while (sync_reader->Next(&expected)) {
    ASSERT_TRUE(prefetch->Next(&actual)) << "edge " << i;
    ASSERT_EQ(actual, expected) << "edge " << i;
    ++i;
  }
  EXPECT_FALSE(prefetch->Next(&actual));
  EXPECT_EQ(prefetch->EdgesRead(), stream.size());
  EXPECT_FALSE(prefetch->Truncated());
  EXPECT_FALSE(prefetch->ChecksumFailed());
}

TEST_P(PrefetchFormats, BatchSequenceMatchesSyncReader) {
  const EdgeStream& stream = PipelineStream();
  std::string path = WriteFormat(stream, "pf_batch_v" + std::to_string(uint32_t(GetParam())) + ".bin", GetParam());

  std::string error;
  auto sync_reader = StreamFileReader::Open(path, &error);
  ASSERT_NE(sync_reader, nullptr) << error;
  auto prefetch = PrefetchDecoder::Create(
      StreamFileReader::Open(path, &error));
  ASSERT_NE(prefetch, nullptr) << error;

  for (;;) {
    std::span<const Edge> expected = sync_reader->NextBatch();
    std::span<const Edge> actual = prefetch->NextBatch();
    ASSERT_EQ(actual.size(), expected.size());
    if (expected.empty()) break;
    ASSERT_TRUE(std::equal(actual.begin(), actual.end(), expected.begin()));
  }
}

TEST_P(PrefetchFormats, InterleavedSeeksMatchSyncReader) {
  const EdgeStream& stream = PipelineStream();
  std::string path = WriteFormat(stream, "pf_seek_v" + std::to_string(uint32_t(GetParam())) + ".bin", GetParam());

  std::string error;
  auto prefetch = PrefetchDecoder::Create(
      StreamFileReader::Open(path, &error));
  ASSERT_NE(prefetch, nullptr) << error;

  // Jump around (backwards included — pipeline restart), reading a
  // short run after each landing.
  Rng rng(77);
  for (int round = 0; round < 20; ++round) {
    size_t index = size_t(rng.UniformInt(stream.size()));
    ASSERT_TRUE(prefetch->SeekToEdge(index));
    Edge edge;
    for (size_t k = 0; k < 300 && index + k < stream.size(); ++k) {
      ASSERT_TRUE(prefetch->Next(&edge)) << "round " << round;
      ASSERT_EQ(edge, stream.edges[index + k]) << "round " << round;
    }
  }
}

TEST_P(PrefetchFormats, RunStreamFromFileIsBitIdenticalEitherWay) {
  const EdgeStream& stream = PipelineStream();
  std::string path = WriteFormat(stream, "pf_run_v" + std::to_string(uint32_t(GetParam())) + ".bin", GetParam());

  std::string error;
  StreamReadOptions sync_options;
  sync_options.prefetch = false;
  KkAlgorithm sync_algorithm(5);
  auto sync_solution =
      RunStreamFromFile(sync_algorithm, path, sync_options, &error);
  ASSERT_TRUE(sync_solution.has_value()) << error;

  StreamReadOptions prefetch_options;
  prefetch_options.prefetch = true;
  KkAlgorithm prefetch_algorithm(5);
  auto prefetch_solution =
      RunStreamFromFile(prefetch_algorithm, path, prefetch_options, &error);
  ASSERT_TRUE(prefetch_solution.has_value()) << error;

  EXPECT_EQ(prefetch_solution->cover, sync_solution->cover);
  EXPECT_EQ(prefetch_solution->certificate, sync_solution->certificate);
}

INSTANTIATE_TEST_SUITE_P(AllFormats, PrefetchFormats,
                         testing::Values(StreamFormat::kV1, StreamFormat::kV2,
                                         StreamFormat::kV3),
                         [](const testing::TestParamInfo<StreamFormat>& i) {
                           return "v" + std::to_string(uint32_t(i.param));
                         });

TEST(PrefetchDecoderTest, CorruptChunkEndsTheStreamWithFlags) {
  const EdgeStream& stream = PipelineStream();
  std::string path = WriteFormat(stream, "pf_corrupt.bin", StreamFormat::kV3);
  // Flip a byte in the middle of the chunk data region.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long mid = std::ftell(f) / 2;
  std::fseek(f, mid, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, mid, SEEK_SET);
  std::fputc(c ^ 0x20, f);
  std::fclose(f);

  std::string error;
  auto prefetch = PrefetchDecoder::Create(
      StreamFileReader::Open(path, &error));
  ASSERT_NE(prefetch, nullptr) << error;
  Edge edge;
  size_t surfaced = 0;
  while (prefetch->Next(&edge)) {
    ASSERT_EQ(edge, stream.edges[surfaced]);
    ++surfaced;
  }
  EXPECT_LT(surfaced, stream.size());
  EXPECT_TRUE(prefetch->ChecksumFailed() || prefetch->Truncated());

  // A seek back into the intact prefix recovers it.
  ASSERT_TRUE(prefetch->SeekToEdge(0));
  ASSERT_TRUE(prefetch->Next(&edge));
  EXPECT_EQ(edge, stream.edges[0]);
}

TEST(PrefetchDecoderTest, DestructionMidStreamJoinsCleanly) {
  const EdgeStream& stream = PipelineStream();
  std::string path = WriteFormat(stream, "pf_abort.bin", StreamFormat::kV3);
  // Tear the decoder down at various depths, including while the worker
  // is likely mid-unit — the join must never hang or race.
  for (size_t reads : {size_t{0}, size_t{1}, size_t{5000}, size_t{70000}}) {
    std::string error;
    auto prefetch = PrefetchDecoder::Create(
        StreamFileReader::Open(path, &error));
    ASSERT_NE(prefetch, nullptr) << error;
    Edge edge;
    for (size_t i = 0; i < reads && prefetch->Next(&edge); ++i) {
    }
  }
}

TEST(PrefetchDecoderTest, RepeatedSeekStressRestartsThePipeline) {
  const EdgeStream& stream = PipelineStream();
  std::string path = WriteFormat(stream, "pf_stress.bin", StreamFormat::kV3);
  std::string error;
  auto prefetch = PrefetchDecoder::Create(
      StreamFileReader::Open(path, &error));
  ASSERT_NE(prefetch, nullptr) << error;
  // Many worker restarts back to back; each must leave a consistent
  // pipeline behind.
  for (int round = 0; round < 100; ++round) {
    size_t index = (size_t(round) * 1237) % stream.size();
    ASSERT_TRUE(prefetch->SeekToEdge(index));
    Edge edge;
    ASSERT_TRUE(prefetch->Next(&edge));
    ASSERT_EQ(edge, stream.edges[index]);
  }
}

}  // namespace
}  // namespace setcover
