#include "util/backoff.h"

#include <gtest/gtest.h>

namespace setcover {
namespace {

TEST(BackoffTest, GrowsGeometricallyUpToCap) {
  BackoffPolicy policy;
  policy.max_retries = 6;
  policy.initial_delay_us = 100;
  policy.multiplier = 2.0;
  policy.max_delay_us = 1000;
  ExponentialBackoff backoff(policy);

  uint64_t delay = 0;
  ASSERT_TRUE(backoff.NextDelay(&delay));
  EXPECT_EQ(delay, 100u);
  ASSERT_TRUE(backoff.NextDelay(&delay));
  EXPECT_EQ(delay, 200u);
  ASSERT_TRUE(backoff.NextDelay(&delay));
  EXPECT_EQ(delay, 400u);
  ASSERT_TRUE(backoff.NextDelay(&delay));
  EXPECT_EQ(delay, 800u);
  ASSERT_TRUE(backoff.NextDelay(&delay));
  EXPECT_EQ(delay, 1000u);  // clamped
  ASSERT_TRUE(backoff.NextDelay(&delay));
  EXPECT_EQ(delay, 1000u);
  EXPECT_EQ(backoff.Attempts(), 6u);

  // Budget exhausted: refuses and leaves the out-param alone.
  delay = 12345;
  EXPECT_FALSE(backoff.NextDelay(&delay));
  EXPECT_EQ(delay, 12345u);
}

TEST(BackoffTest, ResetRearmsTheSchedule) {
  BackoffPolicy policy;
  policy.max_retries = 2;
  policy.initial_delay_us = 50;
  ExponentialBackoff backoff(policy);

  uint64_t delay = 0;
  ASSERT_TRUE(backoff.NextDelay(&delay));
  ASSERT_TRUE(backoff.NextDelay(&delay));
  EXPECT_FALSE(backoff.NextDelay(&delay));

  backoff.Reset();
  EXPECT_EQ(backoff.Attempts(), 0u);
  ASSERT_TRUE(backoff.NextDelay(&delay));
  EXPECT_EQ(delay, 50u);
}

TEST(BackoffTest, ZeroRetriesAlwaysRefuses) {
  BackoffPolicy policy;
  policy.max_retries = 0;
  ExponentialBackoff backoff(policy);
  uint64_t delay = 0;
  EXPECT_FALSE(backoff.NextDelay(&delay));
}

}  // namespace
}  // namespace setcover
