#include "util/backoff.h"

#include <algorithm>
#include <cstddef>

#include <gtest/gtest.h>

namespace setcover {
namespace {

TEST(BackoffTest, GrowsGeometricallyUpToCap) {
  BackoffPolicy policy;
  policy.max_retries = 6;
  policy.initial_delay_us = 100;
  policy.multiplier = 2.0;
  policy.max_delay_us = 1000;
  ExponentialBackoff backoff(policy);

  uint64_t delay = 0;
  ASSERT_TRUE(backoff.NextDelay(&delay));
  EXPECT_EQ(delay, 100u);
  ASSERT_TRUE(backoff.NextDelay(&delay));
  EXPECT_EQ(delay, 200u);
  ASSERT_TRUE(backoff.NextDelay(&delay));
  EXPECT_EQ(delay, 400u);
  ASSERT_TRUE(backoff.NextDelay(&delay));
  EXPECT_EQ(delay, 800u);
  ASSERT_TRUE(backoff.NextDelay(&delay));
  EXPECT_EQ(delay, 1000u);  // clamped
  ASSERT_TRUE(backoff.NextDelay(&delay));
  EXPECT_EQ(delay, 1000u);
  EXPECT_EQ(backoff.Attempts(), 6u);

  // Budget exhausted: refuses and leaves the out-param alone.
  delay = 12345;
  EXPECT_FALSE(backoff.NextDelay(&delay));
  EXPECT_EQ(delay, 12345u);
}

TEST(BackoffTest, ResetRearmsTheSchedule) {
  BackoffPolicy policy;
  policy.max_retries = 2;
  policy.initial_delay_us = 50;
  ExponentialBackoff backoff(policy);

  uint64_t delay = 0;
  ASSERT_TRUE(backoff.NextDelay(&delay));
  ASSERT_TRUE(backoff.NextDelay(&delay));
  EXPECT_FALSE(backoff.NextDelay(&delay));

  backoff.Reset();
  EXPECT_EQ(backoff.Attempts(), 0u);
  ASSERT_TRUE(backoff.NextDelay(&delay));
  EXPECT_EQ(delay, 50u);
}

TEST(BackoffTest, ZeroRetriesAlwaysRefuses) {
  BackoffPolicy policy;
  policy.max_retries = 0;
  ExponentialBackoff backoff(policy);
  uint64_t delay = 0;
  EXPECT_FALSE(backoff.NextDelay(&delay));
}

TEST(BackoffJitterTest, EmittedDelaysStayInsideTheJitterWindow) {
  BackoffPolicy policy;
  policy.max_retries = 32;
  policy.initial_delay_us = 1000;
  policy.multiplier = 2.0;
  policy.max_delay_us = 64000;
  policy.jitter = 0.5;
  policy.jitter_seed = 7;
  ExponentialBackoff backoff(policy);

  uint64_t base = policy.initial_delay_us;
  uint64_t delay = 0;
  for (uint32_t i = 0; i < policy.max_retries; ++i) {
    ASSERT_TRUE(backoff.NextDelay(&delay));
    // Window is (base/2, base]: jitter shaves off at most half, and the
    // cap still bounds every emission.
    EXPECT_GT(delay, base - base / 2 - 1) << "attempt " << i;
    EXPECT_LE(delay, base) << "attempt " << i;
    EXPECT_LE(delay, policy.max_delay_us) << "attempt " << i;
    base = std::min(uint64_t(double(base) * policy.multiplier),
                    policy.max_delay_us);
  }
  EXPECT_FALSE(backoff.NextDelay(&delay));
}

TEST(BackoffJitterTest, SameSeedSameSchedule) {
  BackoffPolicy policy;
  policy.max_retries = 16;
  policy.jitter = 0.3;
  policy.jitter_seed = 42;
  ExponentialBackoff a(policy);
  ExponentialBackoff b(policy);
  uint64_t da = 0, db = 0;
  for (uint32_t i = 0; i < policy.max_retries; ++i) {
    ASSERT_TRUE(a.NextDelay(&da));
    ASSERT_TRUE(b.NextDelay(&db));
    EXPECT_EQ(da, db) << "attempt " << i;
  }
}

TEST(BackoffJitterTest, DifferentSeedsDecorrelate) {
  BackoffPolicy policy;
  policy.max_retries = 16;
  policy.initial_delay_us = 1u << 20;  // wide window so collisions are rare
  policy.max_delay_us = 1u << 30;
  policy.jitter = 1.0;
  policy.jitter_seed = 1;
  ExponentialBackoff a(policy);
  policy.jitter_seed = 2;
  ExponentialBackoff b(policy);
  uint64_t da = 0, db = 0;
  size_t differing = 0;
  for (uint32_t i = 0; i < policy.max_retries; ++i) {
    ASSERT_TRUE(a.NextDelay(&da));
    ASSERT_TRUE(b.NextDelay(&db));
    differing += (da != db);
  }
  EXPECT_GT(differing, 12u);  // two clients do not retry in lockstep
}

TEST(BackoffJitterTest, ResetRearmsDelaysButNotTheJitterStream) {
  BackoffPolicy policy;
  policy.max_retries = 4;
  policy.initial_delay_us = 1u << 20;
  policy.max_delay_us = 1u << 30;
  policy.jitter = 1.0;
  policy.jitter_seed = 5;
  ExponentialBackoff backoff(policy);

  uint64_t first = 0, again = 0;
  ASSERT_TRUE(backoff.NextDelay(&first));
  backoff.Reset();
  EXPECT_EQ(backoff.Attempts(), 0u);
  ASSERT_TRUE(backoff.NextDelay(&again));
  // The base delay rearmed to initial_delay_us (again <= initial), but
  // the jitter stream advanced: replaying the first operation's exact
  // delays would re-synchronize colliding clients.
  EXPECT_LE(again, policy.initial_delay_us);
  EXPECT_NE(first, again);
}

TEST(BackoffJitterTest, ZeroJitterIsBitIdenticalToTheUnjitteredSchedule) {
  BackoffPolicy policy;
  policy.max_retries = 8;
  policy.jitter = 0.0;
  ExponentialBackoff jittered(policy);
  ExponentialBackoff plain(policy);
  uint64_t dj = 0, dp = 0;
  while (plain.NextDelay(&dp)) {
    ASSERT_TRUE(jittered.NextDelay(&dj));
    EXPECT_EQ(dj, dp);
  }
  EXPECT_FALSE(jittered.NextDelay(&dj));
}

}  // namespace
}  // namespace setcover
