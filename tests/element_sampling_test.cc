#include "core/element_sampling.h"

#include <cmath>

#include <gtest/gtest.h>

#include "instance/generators.h"
#include "tests/test_util.h"

namespace setcover {
namespace {

SetCoverInstance PlantedInstance(uint32_t n, uint32_t m, uint32_t opt,
                                 uint64_t seed) {
  Rng rng(seed);
  PlantedCoverParams params;
  params.num_elements = n;
  params.num_sets = m;
  params.planted_cover_size = opt;
  params.decoy_max_size = 4;
  return GeneratePlantedCover(params, rng);
}

TEST(ElementSamplingTest, ValidCoverOnEveryOrder) {
  auto inst = PlantedInstance(100, 300, 4, 1);
  for (StreamOrder order :
       {StreamOrder::kRandom, StreamOrder::kSetMajor,
        StreamOrder::kElementMajor, StreamOrder::kRoundRobinSets,
        StreamOrder::kLargeSetsLast}) {
    ElementSamplingAlgorithm algorithm(3);
    RunAndValidate(algorithm, inst, order, 2);
  }
}

TEST(ElementSamplingTest, SampleSizeScalesInverselyWithAlpha) {
  auto inst = PlantedInstance(1024, 2048, 4, 2);
  Rng rng(3);
  auto stream = RandomOrderStream(inst, rng);

  ElementSamplingParams small_alpha;
  small_alpha.alpha = 16.0;  // sample Õ(n/α) ≈ 700, below the n clamp
  ElementSamplingAlgorithm a(5, small_alpha);
  a.Begin(stream.meta);

  ElementSamplingParams large_alpha;
  large_alpha.alpha = 64.0;
  ElementSamplingAlgorithm b(5, large_alpha);
  b.Begin(stream.meta);

  EXPECT_GT(a.SampleSize(), 3 * b.SampleSize());
}

TEST(ElementSamplingTest, SpaceScalesWithSample) {
  // Space = stored projected edges ≈ N·|U'|/n — halving the sample
  // halves the stored edges (up to noise).
  auto inst = PlantedInstance(1024, 8192, 4, 4);
  Rng rng(5);
  auto stream = RandomOrderStream(inst, rng);

  ElementSamplingParams alpha16;
  alpha16.alpha = 16.0;
  ElementSamplingAlgorithm a(7, alpha16);
  RunStream(a, stream);

  ElementSamplingParams alpha64;
  alpha64.alpha = 64.0;
  ElementSamplingAlgorithm b(7, alpha64);
  RunStream(b, stream);

  EXPECT_GT(a.StoredEdges(), 2 * b.StoredEdges());
}

TEST(ElementSamplingTest, FullSampleActsLikeOfflineGreedy) {
  // α <= 1 drives the sample to the whole universe: the result must be
  // exactly a greedy-quality cover (no patching).
  auto inst = PlantedInstance(128, 256, 4, 6);
  ElementSamplingParams params;
  params.alpha = 0.5;
  params.sample_constant = 100.0;  // force |U'| = n
  ElementSamplingAlgorithm algorithm(9, params);
  auto sol = RunAndValidate(algorithm, inst, StreamOrder::kRandom, 7);
  EXPECT_EQ(algorithm.SampleSize(), 128u);
  // Greedy on the full instance finds the planted partition (4 sets)
  // or close to it.
  EXPECT_LE(sol.cover.size(), 10u);
}

TEST(ElementSamplingTest, QualityImprovesWithSmallerAlpha) {
  // The Table-1 row-1 trade-off: smaller α (bigger sample) buys a
  // smaller cover. Compare the extremes over a few trials.
  double cover_small_alpha = 0, cover_large_alpha = 0;
  for (int t = 0; t < 5; ++t) {
    auto inst = PlantedInstance(512, 4096, 4, 100 + t);
    Rng rng(200 + t);
    auto stream = RandomOrderStream(inst, rng);
    ElementSamplingParams small_alpha;
    small_alpha.alpha = 4.0;
    ElementSamplingAlgorithm a(300 + t, small_alpha);
    cover_small_alpha += double(RunStream(a, stream).cover.size());
    ElementSamplingParams large_alpha;
    large_alpha.alpha = 64.0;
    ElementSamplingAlgorithm b(300 + t, large_alpha);
    cover_large_alpha += double(RunStream(b, stream).cover.size());
  }
  EXPECT_LT(cover_small_alpha, cover_large_alpha);
}

TEST(ElementSamplingTest, DeterministicGivenSeed) {
  auto inst = PlantedInstance(90, 200, 3, 8);
  ElementSamplingAlgorithm a(11), b(11);
  auto sa = RunAndValidate(a, inst, StreamOrder::kRandom, 9);
  auto sb = RunAndValidate(b, inst, StreamOrder::kRandom, 9);
  EXPECT_EQ(sa.cover, sb.cover);
}

TEST(ElementSamplingTest, TinyInstances) {
  auto one = SetCoverInstance::FromSets(1, {{0}});
  ElementSamplingAlgorithm a(1);
  EXPECT_EQ(RunAndValidate(a, one, StreamOrder::kSetMajor, 1).cover.size(),
            1u);
}

}  // namespace
}  // namespace setcover
