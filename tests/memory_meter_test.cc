#include "util/memory_meter.h"

#include <gtest/gtest.h>

namespace setcover {
namespace {

TEST(MemoryMeterTest, StartsEmpty) {
  MemoryMeter meter;
  EXPECT_EQ(meter.CurrentWords(), 0u);
  EXPECT_EQ(meter.PeakWords(), 0u);
}

TEST(MemoryMeterTest, SetTracksCurrentAndPeak) {
  MemoryMeter meter;
  auto a = meter.Register("a");
  meter.Set(a, 100);
  EXPECT_EQ(meter.CurrentWords(), 100u);
  EXPECT_EQ(meter.PeakWords(), 100u);
  meter.Set(a, 40);
  EXPECT_EQ(meter.CurrentWords(), 40u);
  EXPECT_EQ(meter.PeakWords(), 100u);
}

TEST(MemoryMeterTest, MultipleComponentsSum) {
  MemoryMeter meter;
  auto a = meter.Register("a");
  auto b = meter.Register("b");
  meter.Set(a, 10);
  meter.Set(b, 20);
  EXPECT_EQ(meter.CurrentWords(), 30u);
  EXPECT_EQ(meter.ComponentWords(a), 10u);
  EXPECT_EQ(meter.ComponentWords(b), 20u);
}

TEST(MemoryMeterTest, PeakIsOfTheTotal) {
  MemoryMeter meter;
  auto a = meter.Register("a");
  auto b = meter.Register("b");
  meter.Set(a, 50);
  meter.Set(b, 50);  // total 100
  meter.Set(a, 0);
  meter.Set(b, 90);  // total 90
  EXPECT_EQ(meter.PeakWords(), 100u);
  EXPECT_EQ(meter.ComponentPeakWords(b), 90u);
}

TEST(MemoryMeterTest, AddAndSub) {
  MemoryMeter meter;
  auto a = meter.Register("a");
  meter.Add(a, 5);
  meter.Add(a, 7);
  EXPECT_EQ(meter.CurrentWords(), 12u);
  meter.Sub(a, 2);
  EXPECT_EQ(meter.CurrentWords(), 10u);
  EXPECT_EQ(meter.PeakWords(), 12u);
}

TEST(MemoryMeterTest, ResetClearsCountsKeepsComponents) {
  MemoryMeter meter;
  auto a = meter.Register("a");
  meter.Set(a, 99);
  meter.Reset();
  EXPECT_EQ(meter.CurrentWords(), 0u);
  EXPECT_EQ(meter.PeakWords(), 0u);
  meter.Set(a, 3);  // component id still valid
  EXPECT_EQ(meter.CurrentWords(), 3u);
}

TEST(MemoryMeterTest, BreakdownStringMentionsComponents) {
  MemoryMeter meter;
  auto a = meter.Register("levels");
  meter.Set(a, 7);
  std::string s = meter.BreakdownString();
  EXPECT_NE(s.find("levels=7"), std::string::npos);
  EXPECT_NE(s.find("peak_total=7"), std::string::npos);
}

}  // namespace
}  // namespace setcover
