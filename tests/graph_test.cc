#include "graph/graph.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "instance/validator.h"
#include "offline/greedy.h"

namespace setcover {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph graph(10);
  EXPECT_EQ(graph.NumVertices(), 10u);
  EXPECT_EQ(graph.NumEdges(), 0u);
  for (uint32_t v = 0; v < 10; ++v) {
    EXPECT_TRUE(graph.Neighbors(v).empty());
  }
}

TEST(GraphTest, AddEdgeSymmetricDeduplicated) {
  Graph graph(4);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 0);  // duplicate, reversed
  graph.AddEdge(2, 3);
  graph.AddEdge(1, 1);  // self-loop dropped
  graph.Finish();
  EXPECT_EQ(graph.NumEdges(), 2u);
  ASSERT_EQ(graph.Neighbors(0).size(), 1u);
  EXPECT_EQ(graph.Neighbors(0)[0], 1u);
  ASSERT_EQ(graph.Neighbors(1).size(), 1u);
  EXPECT_EQ(graph.Neighbors(1)[0], 0u);
}

TEST(GraphTest, ErdosRenyiEdgeCountNearExpectation) {
  Rng rng(1);
  const uint32_t n = 200;
  const double p = 0.1;
  Graph graph = Graph::ErdosRenyi(n, p, rng);
  double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(double(graph.NumEdges()), expected, 0.15 * expected);
}

TEST(GraphTest, ErdosRenyiExtremes) {
  Rng rng(2);
  EXPECT_EQ(Graph::ErdosRenyi(50, 0.0, rng).NumEdges(), 0u);
  EXPECT_EQ(Graph::ErdosRenyi(50, 1.0, rng).NumEdges(), 50u * 49 / 2);
}

TEST(GraphTest, BarabasiAlbertIsHeavyTailed) {
  Rng rng(3);
  Graph graph = Graph::BarabasiAlbert(2000, 2, rng);
  std::vector<size_t> degrees;
  degrees.reserve(2000);
  for (uint32_t v = 0; v < 2000; ++v) {
    degrees.push_back(graph.Neighbors(v).size());
  }
  std::sort(degrees.begin(), degrees.end());
  size_t max_degree = degrees.back();
  double median = double(degrees[1000]);
  // Preferential attachment: hubs dwarf the median degree.
  EXPECT_GT(double(max_degree), 8.0 * median);
}

TEST(GraphTest, BarabasiAlbertConnectedEnough) {
  Rng rng(4);
  Graph graph = Graph::BarabasiAlbert(500, 3, rng);
  // Every non-seed vertex attached to something.
  for (uint32_t v = 3; v < 500; ++v) {
    EXPECT_FALSE(graph.Neighbors(v).empty()) << v;
  }
}

TEST(GraphTest, RandomRegularDegreesConcentrate) {
  Rng rng(5);
  Graph graph = Graph::RandomRegular(500, 8, rng);
  size_t total = 0;
  for (uint32_t v = 0; v < 500; ++v) {
    auto degree = graph.Neighbors(v).size();
    EXPECT_LE(degree, 8u);
    total += degree;
  }
  // Only self-loops/duplicates are lost: on average degree ≈ 8 − o(1).
  EXPECT_GT(double(total) / 500.0, 7.5);
}

TEST(GraphTest, DominatingSetInstanceMatchesGraph) {
  Rng rng(6);
  Graph graph = Graph::ErdosRenyi(80, 0.08, rng);
  SetCoverInstance inst = graph.ToDominatingSetInstance();
  EXPECT_EQ(inst.NumSets(), 80u);
  EXPECT_EQ(inst.NumElements(), 80u);
  // Closed neighborhood: v ∈ N[v] and |N[v]| = deg(v) + 1.
  for (uint32_t v = 0; v < 80; ++v) {
    EXPECT_TRUE(inst.Contains(v, v));
    EXPECT_EQ(inst.Set(v).size(), graph.Neighbors(v).size() + 1);
  }
}

TEST(GraphTest, GreedyCoverIsDominatingSet) {
  Rng rng(7);
  Graph graph = Graph::BarabasiAlbert(300, 2, rng);
  SetCoverInstance inst = graph.ToDominatingSetInstance();
  CoverSolution cover = GreedyCover(inst);
  EXPECT_TRUE(ValidateSolution(inst, cover).ok);
  std::vector<uint32_t> vertices(cover.cover.begin(), cover.cover.end());
  EXPECT_TRUE(graph.IsDominatingSet(vertices));
}

TEST(GraphTest, IsDominatingSetRejectsNonDominating) {
  Graph graph(4);
  graph.AddEdge(0, 1);
  graph.AddEdge(2, 3);
  graph.Finish();
  EXPECT_FALSE(graph.IsDominatingSet({0}));   // 2, 3 undominated
  EXPECT_TRUE(graph.IsDominatingSet({0, 2}));
  EXPECT_FALSE(graph.IsDominatingSet({99}));  // out of range
}

TEST(GraphDeathTest, AddEdgeOutOfRangeAborts) {
  Graph graph(3);
  EXPECT_DEATH(graph.AddEdge(0, 7), "out of range");
}

}  // namespace
}  // namespace setcover
