#include "stream/stream_file.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "core/kk_algorithm.h"
#include "instance/generators.h"
#include "instance/validator.h"
#include "stream/orderings.h"
#include "util/rng.h"

namespace setcover {
namespace {

EdgeStream TestStream(uint64_t seed) {
  Rng rng(seed);
  UniformRandomParams params;
  params.num_elements = 60;
  params.num_sets = 40;
  params.max_set_size = 6;
  auto inst = GenerateUniformRandom(params, rng);
  return RandomOrderStream(inst, rng);
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(StreamFileTest, RoundTrip) {
  auto stream = TestStream(1);
  std::string path = TempPath("roundtrip.bin");
  ASSERT_TRUE(WriteStreamFile(stream, path));

  std::string error;
  auto reader = StreamFileReader::Open(path, &error);
  ASSERT_NE(reader, nullptr) << error;
  EXPECT_EQ(reader->Meta().num_sets, stream.meta.num_sets);
  EXPECT_EQ(reader->Meta().num_elements, stream.meta.num_elements);
  EXPECT_EQ(reader->Meta().stream_length, stream.meta.stream_length);

  Edge edge;
  size_t i = 0;
  while (reader->Next(&edge)) {
    ASSERT_LT(i, stream.edges.size());
    EXPECT_EQ(edge, stream.edges[i]);
    ++i;
  }
  EXPECT_EQ(i, stream.edges.size());
  EXPECT_FALSE(reader->Truncated());
}

TEST(StreamFileTest, EmptyStream) {
  EdgeStream stream;
  stream.meta = {5, 3, 0};
  std::string path = TempPath("empty.bin");
  ASSERT_TRUE(WriteStreamFile(stream, path));
  std::string error;
  auto reader = StreamFileReader::Open(path, &error);
  ASSERT_NE(reader, nullptr) << error;
  Edge edge;
  EXPECT_FALSE(reader->Next(&edge));
}

TEST(StreamFileTest, RejectsMissingFile) {
  std::string error;
  EXPECT_EQ(StreamFileReader::Open("/nonexistent/stream.bin", &error),
            nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(StreamFileTest, RejectsBadMagic) {
  std::string path = TempPath("badmagic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPEnonsense data here";
  }
  std::string error;
  EXPECT_EQ(StreamFileReader::Open(path, &error), nullptr);
  EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST(StreamFileTest, DetectsTruncation) {
  auto stream = TestStream(2);
  std::string path = TempPath("truncated.bin");
  ASSERT_TRUE(WriteStreamFile(stream, path));
  // Chop off the last 12 bytes.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size - 12), 0);

  std::string error;
  auto reader = StreamFileReader::Open(path, &error);
  ASSERT_NE(reader, nullptr) << error;
  Edge edge;
  size_t count = 0;
  while (reader->Next(&edge)) ++count;
  EXPECT_LT(count, stream.edges.size());
  EXPECT_TRUE(reader->Truncated());
}

TEST(StreamFileTest, RunAlgorithmFromFile) {
  Rng rng(3);
  PlantedCoverParams params;
  params.num_elements = 80;
  params.num_sets = 200;
  params.planted_cover_size = 4;
  auto inst = GeneratePlantedCover(params, rng);
  auto stream = RandomOrderStream(inst, rng);
  std::string path = TempPath("solve.bin");
  ASSERT_TRUE(WriteStreamFile(stream, path));

  KkAlgorithm algorithm(7);
  std::string error;
  auto solution = RunStreamFromFile(algorithm, path, &error);
  ASSERT_TRUE(solution.has_value()) << error;
  EXPECT_TRUE(ValidateSolution(inst, *solution).ok);

  // Must match an in-memory run bit-for-bit (same seed, same order).
  KkAlgorithm reference(7);
  auto expected = RunStream(reference, stream);
  EXPECT_EQ(solution->cover, expected.cover);
}

TEST(StreamFileTest, LargeStreamBuffersCorrectly) {
  // Exceed the 64Ki-edge internal buffer to exercise refills.
  Rng rng(4);
  UniformRandomParams params;
  params.num_elements = 500;
  params.num_sets = 40000;
  params.min_set_size = 2;
  params.max_set_size = 4;
  auto inst = GenerateUniformRandom(params, rng);
  auto stream = RandomOrderStream(inst, rng);
  ASSERT_GT(stream.size(), size_t{1} << 16);

  std::string path = TempPath("large.bin");
  ASSERT_TRUE(WriteStreamFile(stream, path));
  std::string error;
  auto reader = StreamFileReader::Open(path, &error);
  ASSERT_NE(reader, nullptr) << error;
  Edge edge;
  size_t count = 0;
  while (reader->Next(&edge)) ++count;
  EXPECT_EQ(count, stream.size());
}

TEST(StreamFileTest, WritesVersion2WithNoTempFileLeftBehind) {
  auto stream = TestStream(5);
  std::string path = TempPath("v2.bin");
  ASSERT_TRUE(WriteStreamFile(stream, path));

  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr) << "atomic writer left its staging file";
  if (tmp != nullptr) std::fclose(tmp);

  std::string error;
  auto reader = StreamFileReader::Open(path, &error);
  ASSERT_NE(reader, nullptr) << error;
  EXPECT_EQ(reader->Version(), 2u);
}

TEST(StreamFileTest, RewriteReplacesAtomically) {
  auto first = TestStream(6);
  auto second = TestStream(7);
  std::string path = TempPath("rewrite.bin");
  ASSERT_TRUE(WriteStreamFile(first, path));
  ASSERT_TRUE(WriteStreamFile(second, path));

  std::string error;
  auto reader = StreamFileReader::Open(path, &error);
  ASSERT_NE(reader, nullptr) << error;
  EXPECT_EQ(reader->Meta().stream_length, second.meta.stream_length);
  Edge edge;
  size_t i = 0;
  while (reader->Next(&edge)) EXPECT_EQ(edge, second.edges[i++]);
  EXPECT_EQ(i, second.size());
}

TEST(StreamFileTest, DetectsFlippedPayloadBitViaChunkChecksum) {
  auto stream = TestStream(8);
  std::string path = TempPath("bitflip.bin");
  ASSERT_TRUE(WriteStreamFile(stream, path));

  // Flip one bit inside the first chunk's payload. The file length is
  // untouched, so only the CRC can notice.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 28 + 8 + 20, SEEK_SET);  // header + chunk header + 20
  int c = std::fgetc(f);
  std::fseek(f, 28 + 8 + 20, SEEK_SET);
  std::fputc(c ^ 0x04, f);
  std::fclose(f);

  std::string error;
  auto reader = StreamFileReader::Open(path, &error);
  ASSERT_NE(reader, nullptr) << error;
  Edge edge;
  size_t surfaced = 0;
  while (reader->Next(&edge)) ++surfaced;
  EXPECT_TRUE(reader->ChecksumFailed());
  EXPECT_EQ(surfaced, 0u) << "edges from a corrupt chunk were surfaced";
}

TEST(StreamFileTest, DetectsCorruptedChunkCountViaDeclaredLength) {
  auto stream = TestStream(9);
  std::string path = TempPath("badcount.bin");
  ASSERT_TRUE(WriteStreamFile(stream, path));

  // Overwrite the first chunk's count field. The expected count is
  // derived from the header's N, so the lie is caught immediately
  // rather than desynchronizing every later chunk.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 28, SEEK_SET);
  uint32_t bogus = 7;
  ASSERT_EQ(std::fwrite(&bogus, sizeof bogus, 1, f), 1u);
  std::fclose(f);

  std::string error;
  auto reader = StreamFileReader::Open(path, &error);
  ASSERT_NE(reader, nullptr) << error;
  Edge edge;
  size_t surfaced = 0;
  while (reader->Next(&edge)) ++surfaced;
  EXPECT_TRUE(reader->ChecksumFailed());
  EXPECT_EQ(surfaced, 0u);
}

TEST(StreamFileTest, DetectsCorruptedHeaderViaHeaderChecksum) {
  auto stream = TestStream(10);
  std::string path = TempPath("badheader.bin");
  ASSERT_TRUE(WriteStreamFile(stream, path));

  // Damage the m field without touching anything else.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 8, SEEK_SET);
  uint32_t bogus = 0xFFFFFFu;
  ASSERT_EQ(std::fwrite(&bogus, sizeof bogus, 1, f), 1u);
  std::fclose(f);

  std::string error;
  EXPECT_EQ(StreamFileReader::Open(path, &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(StreamFileTest, SeekToEdgeLandsExactly) {
  // Span several chunks so seeks cross chunk boundaries.
  Rng rng(11);
  UniformRandomParams params;
  params.num_elements = 300;
  params.num_sets = 4000;
  params.min_set_size = 2;
  params.max_set_size = 5;
  auto inst = GenerateUniformRandom(params, rng);
  auto stream = RandomOrderStream(inst, rng);
  ASSERT_GT(stream.size(), size_t{3} * 4096);

  std::string path = TempPath("seek.bin");
  ASSERT_TRUE(WriteStreamFile(stream, path));
  std::string error;
  auto reader = StreamFileReader::Open(path, &error);
  ASSERT_NE(reader, nullptr) << error;

  for (size_t index : {size_t{0}, size_t{1}, size_t{4095}, size_t{4096},
                       size_t{4097}, size_t{9000}, stream.size() - 1}) {
    ASSERT_TRUE(reader->SeekToEdge(index)) << index;
    EXPECT_EQ(reader->EdgesRead(), index);
    Edge edge;
    ASSERT_TRUE(reader->Next(&edge)) << index;
    EXPECT_EQ(edge, stream.edges[index]) << index;
  }

  // Seeking to N positions at end-of-stream; past N is refused.
  ASSERT_TRUE(reader->SeekToEdge(stream.size()));
  Edge edge;
  EXPECT_FALSE(reader->Next(&edge));
  EXPECT_FALSE(reader->SeekToEdge(stream.size() + 1));
}

}  // namespace
}  // namespace setcover
