#include "stream/stream_file.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "core/kk_algorithm.h"
#include "instance/generators.h"
#include "instance/validator.h"
#include "stream/orderings.h"
#include "util/rng.h"

namespace setcover {
namespace {

EdgeStream TestStream(uint64_t seed) {
  Rng rng(seed);
  UniformRandomParams params;
  params.num_elements = 60;
  params.num_sets = 40;
  params.max_set_size = 6;
  auto inst = GenerateUniformRandom(params, rng);
  return RandomOrderStream(inst, rng);
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(StreamFileTest, RoundTrip) {
  auto stream = TestStream(1);
  std::string path = TempPath("roundtrip.bin");
  ASSERT_TRUE(WriteStreamFile(stream, path));

  std::string error;
  auto reader = StreamFileReader::Open(path, &error);
  ASSERT_NE(reader, nullptr) << error;
  EXPECT_EQ(reader->Meta().num_sets, stream.meta.num_sets);
  EXPECT_EQ(reader->Meta().num_elements, stream.meta.num_elements);
  EXPECT_EQ(reader->Meta().stream_length, stream.meta.stream_length);

  Edge edge;
  size_t i = 0;
  while (reader->Next(&edge)) {
    ASSERT_LT(i, stream.edges.size());
    EXPECT_EQ(edge, stream.edges[i]);
    ++i;
  }
  EXPECT_EQ(i, stream.edges.size());
  EXPECT_FALSE(reader->Truncated());
}

TEST(StreamFileTest, EmptyStream) {
  EdgeStream stream;
  stream.meta = {5, 3, 0};
  std::string path = TempPath("empty.bin");
  ASSERT_TRUE(WriteStreamFile(stream, path));
  std::string error;
  auto reader = StreamFileReader::Open(path, &error);
  ASSERT_NE(reader, nullptr) << error;
  Edge edge;
  EXPECT_FALSE(reader->Next(&edge));
}

TEST(StreamFileTest, RejectsMissingFile) {
  std::string error;
  EXPECT_EQ(StreamFileReader::Open("/nonexistent/stream.bin", &error),
            nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(StreamFileTest, RejectsBadMagic) {
  std::string path = TempPath("badmagic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPEnonsense data here";
  }
  std::string error;
  EXPECT_EQ(StreamFileReader::Open(path, &error), nullptr);
  EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST(StreamFileTest, DetectsTruncation) {
  auto stream = TestStream(2);
  std::string path = TempPath("truncated.bin");
  ASSERT_TRUE(WriteStreamFile(stream, path));
  // Chop off the last 12 bytes.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size - 12), 0);

  std::string error;
  auto reader = StreamFileReader::Open(path, &error);
  ASSERT_NE(reader, nullptr) << error;
  Edge edge;
  size_t count = 0;
  while (reader->Next(&edge)) ++count;
  EXPECT_LT(count, stream.edges.size());
  EXPECT_TRUE(reader->Truncated());
}

TEST(StreamFileTest, RunAlgorithmFromFile) {
  Rng rng(3);
  PlantedCoverParams params;
  params.num_elements = 80;
  params.num_sets = 200;
  params.planted_cover_size = 4;
  auto inst = GeneratePlantedCover(params, rng);
  auto stream = RandomOrderStream(inst, rng);
  std::string path = TempPath("solve.bin");
  ASSERT_TRUE(WriteStreamFile(stream, path));

  KkAlgorithm algorithm(7);
  std::string error;
  auto solution = RunStreamFromFile(algorithm, path, &error);
  ASSERT_TRUE(solution.has_value()) << error;
  EXPECT_TRUE(ValidateSolution(inst, *solution).ok);

  // Must match an in-memory run bit-for-bit (same seed, same order).
  KkAlgorithm reference(7);
  auto expected = RunStream(reference, stream);
  EXPECT_EQ(solution->cover, expected.cover);
}

TEST(StreamFileTest, LargeStreamBuffersCorrectly) {
  // Exceed the 64Ki-edge internal buffer to exercise refills.
  Rng rng(4);
  UniformRandomParams params;
  params.num_elements = 500;
  params.num_sets = 40000;
  params.min_set_size = 2;
  params.max_set_size = 4;
  auto inst = GenerateUniformRandom(params, rng);
  auto stream = RandomOrderStream(inst, rng);
  ASSERT_GT(stream.size(), size_t{1} << 16);

  std::string path = TempPath("large.bin");
  ASSERT_TRUE(WriteStreamFile(stream, path));
  std::string error;
  auto reader = StreamFileReader::Open(path, &error);
  ASSERT_NE(reader, nullptr) << error;
  Edge edge;
  size_t count = 0;
  while (reader->Next(&edge)) ++count;
  EXPECT_EQ(count, stream.size());
}

}  // namespace
}  // namespace setcover
