file(REMOVE_RECURSE
  "CMakeFiles/bench_separation.dir/bench_separation.cc.o"
  "CMakeFiles/bench_separation.dir/bench_separation.cc.o.d"
  "bench_separation"
  "bench_separation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_separation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
