file(REMOVE_RECURSE
  "CMakeFiles/bench_invariants.dir/bench_invariants.cc.o"
  "CMakeFiles/bench_invariants.dir/bench_invariants.cc.o.d"
  "bench_invariants"
  "bench_invariants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
