# Empty dependencies file for bench_adversarial_tradeoff.
# This may be replaced when dependencies are built.
