file(REMOVE_RECURSE
  "CMakeFiles/bench_adversarial_tradeoff.dir/bench_adversarial_tradeoff.cc.o"
  "CMakeFiles/bench_adversarial_tradeoff.dir/bench_adversarial_tradeoff.cc.o.d"
  "bench_adversarial_tradeoff"
  "bench_adversarial_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adversarial_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
