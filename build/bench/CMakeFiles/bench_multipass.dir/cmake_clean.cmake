file(REMOVE_RECURSE
  "CMakeFiles/bench_multipass.dir/bench_multipass.cc.o"
  "CMakeFiles/bench_multipass.dir/bench_multipass.cc.o.d"
  "bench_multipass"
  "bench_multipass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multipass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
