file(REMOVE_RECURSE
  "CMakeFiles/dominating_set.dir/dominating_set.cpp.o"
  "CMakeFiles/dominating_set.dir/dominating_set.cpp.o.d"
  "dominating_set"
  "dominating_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dominating_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
