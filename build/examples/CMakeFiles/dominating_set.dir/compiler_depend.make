# Empty compiler generated dependencies file for dominating_set.
# This may be replaced when dependencies are built.
