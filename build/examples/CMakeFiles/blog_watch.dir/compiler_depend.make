# Empty compiler generated dependencies file for blog_watch.
# This may be replaced when dependencies are built.
