# Empty dependencies file for file_stream.
# This may be replaced when dependencies are built.
