file(REMOVE_RECURSE
  "CMakeFiles/file_stream.dir/file_stream.cpp.o"
  "CMakeFiles/file_stream.dir/file_stream.cpp.o.d"
  "file_stream"
  "file_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
