# Empty compiler generated dependencies file for setcover_cli.
# This may be replaced when dependencies are built.
