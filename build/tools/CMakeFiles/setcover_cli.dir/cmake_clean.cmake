file(REMOVE_RECURSE
  "CMakeFiles/setcover_cli.dir/setcover_cli.cc.o"
  "CMakeFiles/setcover_cli.dir/setcover_cli.cc.o.d"
  "setcover_cli"
  "setcover_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setcover_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
