# Empty compiler generated dependencies file for setcover.
# This may be replaced when dependencies are built.
