
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/deterministic_protocol.cc" "src/CMakeFiles/setcover.dir/comm/deterministic_protocol.cc.o" "gcc" "src/CMakeFiles/setcover.dir/comm/deterministic_protocol.cc.o.d"
  "/root/repo/src/comm/disjointness.cc" "src/CMakeFiles/setcover.dir/comm/disjointness.cc.o" "gcc" "src/CMakeFiles/setcover.dir/comm/disjointness.cc.o.d"
  "/root/repo/src/comm/protocol.cc" "src/CMakeFiles/setcover.dir/comm/protocol.cc.o" "gcc" "src/CMakeFiles/setcover.dir/comm/protocol.cc.o.d"
  "/root/repo/src/comm/reduction.cc" "src/CMakeFiles/setcover.dir/comm/reduction.cc.o" "gcc" "src/CMakeFiles/setcover.dir/comm/reduction.cc.o.d"
  "/root/repo/src/core/adversarial_level.cc" "src/CMakeFiles/setcover.dir/core/adversarial_level.cc.o" "gcc" "src/CMakeFiles/setcover.dir/core/adversarial_level.cc.o.d"
  "/root/repo/src/core/element_sampling.cc" "src/CMakeFiles/setcover.dir/core/element_sampling.cc.o" "gcc" "src/CMakeFiles/setcover.dir/core/element_sampling.cc.o.d"
  "/root/repo/src/core/kk_algorithm.cc" "src/CMakeFiles/setcover.dir/core/kk_algorithm.cc.o" "gcc" "src/CMakeFiles/setcover.dir/core/kk_algorithm.cc.o.d"
  "/root/repo/src/core/max_coverage.cc" "src/CMakeFiles/setcover.dir/core/max_coverage.cc.o" "gcc" "src/CMakeFiles/setcover.dir/core/max_coverage.cc.o.d"
  "/root/repo/src/core/multi_pass.cc" "src/CMakeFiles/setcover.dir/core/multi_pass.cc.o" "gcc" "src/CMakeFiles/setcover.dir/core/multi_pass.cc.o.d"
  "/root/repo/src/core/multi_run.cc" "src/CMakeFiles/setcover.dir/core/multi_run.cc.o" "gcc" "src/CMakeFiles/setcover.dir/core/multi_run.cc.o.d"
  "/root/repo/src/core/random_order.cc" "src/CMakeFiles/setcover.dir/core/random_order.cc.o" "gcc" "src/CMakeFiles/setcover.dir/core/random_order.cc.o.d"
  "/root/repo/src/core/registry.cc" "src/CMakeFiles/setcover.dir/core/registry.cc.o" "gcc" "src/CMakeFiles/setcover.dir/core/registry.cc.o.d"
  "/root/repo/src/core/set_arrival.cc" "src/CMakeFiles/setcover.dir/core/set_arrival.cc.o" "gcc" "src/CMakeFiles/setcover.dir/core/set_arrival.cc.o.d"
  "/root/repo/src/core/trivial.cc" "src/CMakeFiles/setcover.dir/core/trivial.cc.o" "gcc" "src/CMakeFiles/setcover.dir/core/trivial.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/setcover.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/setcover.dir/graph/graph.cc.o.d"
  "/root/repo/src/instance/generators.cc" "src/CMakeFiles/setcover.dir/instance/generators.cc.o" "gcc" "src/CMakeFiles/setcover.dir/instance/generators.cc.o.d"
  "/root/repo/src/instance/hard_instance.cc" "src/CMakeFiles/setcover.dir/instance/hard_instance.cc.o" "gcc" "src/CMakeFiles/setcover.dir/instance/hard_instance.cc.o.d"
  "/root/repo/src/instance/instance.cc" "src/CMakeFiles/setcover.dir/instance/instance.cc.o" "gcc" "src/CMakeFiles/setcover.dir/instance/instance.cc.o.d"
  "/root/repo/src/instance/io.cc" "src/CMakeFiles/setcover.dir/instance/io.cc.o" "gcc" "src/CMakeFiles/setcover.dir/instance/io.cc.o.d"
  "/root/repo/src/instance/validator.cc" "src/CMakeFiles/setcover.dir/instance/validator.cc.o" "gcc" "src/CMakeFiles/setcover.dir/instance/validator.cc.o.d"
  "/root/repo/src/offline/exact.cc" "src/CMakeFiles/setcover.dir/offline/exact.cc.o" "gcc" "src/CMakeFiles/setcover.dir/offline/exact.cc.o.d"
  "/root/repo/src/offline/greedy.cc" "src/CMakeFiles/setcover.dir/offline/greedy.cc.o" "gcc" "src/CMakeFiles/setcover.dir/offline/greedy.cc.o.d"
  "/root/repo/src/offline/lp_bound.cc" "src/CMakeFiles/setcover.dir/offline/lp_bound.cc.o" "gcc" "src/CMakeFiles/setcover.dir/offline/lp_bound.cc.o.d"
  "/root/repo/src/stream/orderings.cc" "src/CMakeFiles/setcover.dir/stream/orderings.cc.o" "gcc" "src/CMakeFiles/setcover.dir/stream/orderings.cc.o.d"
  "/root/repo/src/stream/stream.cc" "src/CMakeFiles/setcover.dir/stream/stream.cc.o" "gcc" "src/CMakeFiles/setcover.dir/stream/stream.cc.o.d"
  "/root/repo/src/stream/stream_file.cc" "src/CMakeFiles/setcover.dir/stream/stream_file.cc.o" "gcc" "src/CMakeFiles/setcover.dir/stream/stream_file.cc.o.d"
  "/root/repo/src/util/bitset.cc" "src/CMakeFiles/setcover.dir/util/bitset.cc.o" "gcc" "src/CMakeFiles/setcover.dir/util/bitset.cc.o.d"
  "/root/repo/src/util/count_min.cc" "src/CMakeFiles/setcover.dir/util/count_min.cc.o" "gcc" "src/CMakeFiles/setcover.dir/util/count_min.cc.o.d"
  "/root/repo/src/util/flags.cc" "src/CMakeFiles/setcover.dir/util/flags.cc.o" "gcc" "src/CMakeFiles/setcover.dir/util/flags.cc.o.d"
  "/root/repo/src/util/kmv.cc" "src/CMakeFiles/setcover.dir/util/kmv.cc.o" "gcc" "src/CMakeFiles/setcover.dir/util/kmv.cc.o.d"
  "/root/repo/src/util/math.cc" "src/CMakeFiles/setcover.dir/util/math.cc.o" "gcc" "src/CMakeFiles/setcover.dir/util/math.cc.o.d"
  "/root/repo/src/util/memory_meter.cc" "src/CMakeFiles/setcover.dir/util/memory_meter.cc.o" "gcc" "src/CMakeFiles/setcover.dir/util/memory_meter.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/setcover.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/setcover.dir/util/rng.cc.o.d"
  "/root/repo/src/util/serialize.cc" "src/CMakeFiles/setcover.dir/util/serialize.cc.o" "gcc" "src/CMakeFiles/setcover.dir/util/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
