file(REMOVE_RECURSE
  "libsetcover.a"
)
