file(REMOVE_RECURSE
  "CMakeFiles/kmv_test.dir/kmv_test.cc.o"
  "CMakeFiles/kmv_test.dir/kmv_test.cc.o.d"
  "kmv_test"
  "kmv_test.pdb"
  "kmv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
