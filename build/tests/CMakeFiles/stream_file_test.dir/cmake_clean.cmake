file(REMOVE_RECURSE
  "CMakeFiles/stream_file_test.dir/stream_file_test.cc.o"
  "CMakeFiles/stream_file_test.dir/stream_file_test.cc.o.d"
  "stream_file_test"
  "stream_file_test.pdb"
  "stream_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
