# Empty compiler generated dependencies file for hard_instance_test.
# This may be replaced when dependencies are built.
