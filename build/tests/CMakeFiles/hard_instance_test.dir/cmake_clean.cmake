file(REMOVE_RECURSE
  "CMakeFiles/hard_instance_test.dir/hard_instance_test.cc.o"
  "CMakeFiles/hard_instance_test.dir/hard_instance_test.cc.o.d"
  "hard_instance_test"
  "hard_instance_test.pdb"
  "hard_instance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hard_instance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
