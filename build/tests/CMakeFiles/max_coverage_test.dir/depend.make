# Empty dependencies file for max_coverage_test.
# This may be replaced when dependencies are built.
