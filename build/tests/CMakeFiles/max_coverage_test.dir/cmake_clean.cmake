file(REMOVE_RECURSE
  "CMakeFiles/max_coverage_test.dir/max_coverage_test.cc.o"
  "CMakeFiles/max_coverage_test.dir/max_coverage_test.cc.o.d"
  "max_coverage_test"
  "max_coverage_test.pdb"
  "max_coverage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/max_coverage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
