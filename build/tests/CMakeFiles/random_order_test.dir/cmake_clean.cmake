file(REMOVE_RECURSE
  "CMakeFiles/random_order_test.dir/random_order_test.cc.o"
  "CMakeFiles/random_order_test.dir/random_order_test.cc.o.d"
  "random_order_test"
  "random_order_test.pdb"
  "random_order_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
