file(REMOVE_RECURSE
  "CMakeFiles/orderings_test.dir/orderings_test.cc.o"
  "CMakeFiles/orderings_test.dir/orderings_test.cc.o.d"
  "orderings_test"
  "orderings_test.pdb"
  "orderings_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orderings_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
