# Empty dependencies file for orderings_test.
# This may be replaced when dependencies are built.
