file(REMOVE_RECURSE
  "CMakeFiles/state_restore_test.dir/state_restore_test.cc.o"
  "CMakeFiles/state_restore_test.dir/state_restore_test.cc.o.d"
  "state_restore_test"
  "state_restore_test.pdb"
  "state_restore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_restore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
