# Empty compiler generated dependencies file for state_restore_test.
# This may be replaced when dependencies are built.
