# Empty compiler generated dependencies file for kk_algorithm_test.
# This may be replaced when dependencies are built.
