file(REMOVE_RECURSE
  "CMakeFiles/kk_algorithm_test.dir/kk_algorithm_test.cc.o"
  "CMakeFiles/kk_algorithm_test.dir/kk_algorithm_test.cc.o.d"
  "kk_algorithm_test"
  "kk_algorithm_test.pdb"
  "kk_algorithm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kk_algorithm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
