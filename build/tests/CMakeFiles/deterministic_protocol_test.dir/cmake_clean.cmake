file(REMOVE_RECURSE
  "CMakeFiles/deterministic_protocol_test.dir/deterministic_protocol_test.cc.o"
  "CMakeFiles/deterministic_protocol_test.dir/deterministic_protocol_test.cc.o.d"
  "deterministic_protocol_test"
  "deterministic_protocol_test.pdb"
  "deterministic_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deterministic_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
