# Empty dependencies file for deterministic_protocol_test.
# This may be replaced when dependencies are built.
