file(REMOVE_RECURSE
  "CMakeFiles/set_arrival_test.dir/set_arrival_test.cc.o"
  "CMakeFiles/set_arrival_test.dir/set_arrival_test.cc.o.d"
  "set_arrival_test"
  "set_arrival_test.pdb"
  "set_arrival_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/set_arrival_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
