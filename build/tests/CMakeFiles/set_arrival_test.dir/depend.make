# Empty dependencies file for set_arrival_test.
# This may be replaced when dependencies are built.
