file(REMOVE_RECURSE
  "CMakeFiles/adversarial_level_test.dir/adversarial_level_test.cc.o"
  "CMakeFiles/adversarial_level_test.dir/adversarial_level_test.cc.o.d"
  "adversarial_level_test"
  "adversarial_level_test.pdb"
  "adversarial_level_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_level_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
