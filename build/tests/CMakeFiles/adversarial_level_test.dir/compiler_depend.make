# Empty compiler generated dependencies file for adversarial_level_test.
# This may be replaced when dependencies are built.
