# Empty dependencies file for element_sampling_test.
# This may be replaced when dependencies are built.
