file(REMOVE_RECURSE
  "CMakeFiles/element_sampling_test.dir/element_sampling_test.cc.o"
  "CMakeFiles/element_sampling_test.dir/element_sampling_test.cc.o.d"
  "element_sampling_test"
  "element_sampling_test.pdb"
  "element_sampling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/element_sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
