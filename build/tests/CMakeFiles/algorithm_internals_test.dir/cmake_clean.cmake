file(REMOVE_RECURSE
  "CMakeFiles/algorithm_internals_test.dir/algorithm_internals_test.cc.o"
  "CMakeFiles/algorithm_internals_test.dir/algorithm_internals_test.cc.o.d"
  "algorithm_internals_test"
  "algorithm_internals_test.pdb"
  "algorithm_internals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithm_internals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
