# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for algorithm_internals_test.
