# Empty dependencies file for algorithm_internals_test.
# This may be replaced when dependencies are built.
