# Empty dependencies file for memory_meter_test.
# This may be replaced when dependencies are built.
