file(REMOVE_RECURSE
  "CMakeFiles/memory_meter_test.dir/memory_meter_test.cc.o"
  "CMakeFiles/memory_meter_test.dir/memory_meter_test.cc.o.d"
  "memory_meter_test"
  "memory_meter_test.pdb"
  "memory_meter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_meter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
