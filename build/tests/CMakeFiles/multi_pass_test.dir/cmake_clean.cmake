file(REMOVE_RECURSE
  "CMakeFiles/multi_pass_test.dir/multi_pass_test.cc.o"
  "CMakeFiles/multi_pass_test.dir/multi_pass_test.cc.o.d"
  "multi_pass_test"
  "multi_pass_test.pdb"
  "multi_pass_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_pass_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
