# Empty dependencies file for multi_pass_test.
# This may be replaced when dependencies are built.
